//! Bounded translation of relational formulas to propositional logic.
//!
//! This reproduces the role of the Alloy analyzer (Kodkod): given a formula
//! over the relation `r: S -> S` and a scope `n`, produce a propositional
//! formula over the `n * n` *primary* variables (one per adjacency-matrix
//! entry, indexed row-major as `i * n + j`) that holds exactly for the
//! instances satisfying the formula. The propositional formula is then
//! converted to CNF by the Tseitin encoder in `satkit`, with the primary
//! variables registered as the projection set so that projected model counts
//! equal the number of satisfying instances.
//!
//! Relational expressions translate to matrices of propositional formulas;
//! quantifiers expand into finite conjunctions/disjunctions over the atoms;
//! transitive closure is translated by iterated squaring.

use crate::ast::{Expr, Formula, QuantVar};
use crate::symmetry::{symmetry_breaking_expr, SymmetryBreaking};
use satkit::cnf::{Cnf, Lit};
use satkit::expr::{BoolExpr, TseitinEncoder};
use std::rc::Rc;

/// Options controlling the bounded translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslateOptions {
    /// The scope: number of atoms in the universe `S`.
    pub scope: usize,
    /// The symmetry-breaking setting whose predicates are conjoined to the
    /// translated formula.
    pub symmetry: SymmetryBreaking,
}

impl TranslateOptions {
    /// Options for the given scope with no symmetry breaking.
    pub fn new(scope: usize) -> Self {
        TranslateOptions {
            scope,
            symmetry: SymmetryBreaking::None,
        }
    }

    /// Sets the symmetry-breaking level.
    pub fn with_symmetry(mut self, sb: SymmetryBreaking) -> Self {
        self.symmetry = sb;
        self
    }
}

/// The result of translating a property at a bounded scope: CNF defining
/// clauses plus a root literal that is equivalent to the property.
///
/// The symmetry-breaking predicates (if any) are asserted unconditionally;
/// the property itself is only *defined* (via `property_root`), so callers
/// can assert either the property or its negation — exactly what the MCML
/// false-positive / true-negative metrics need.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    scope: usize,
    cnf: Cnf,
    property_root: Lit,
    symmetry: SymmetryBreaking,
    positive: Cnf,
    negative: Cnf,
}

impl GroundTruth {
    /// The scope (number of atoms).
    pub fn scope(&self) -> usize {
        self.scope
    }

    /// Number of primary variables (`scope * scope`).
    pub fn num_primary(&self) -> usize {
        self.scope * self.scope
    }

    /// The symmetry-breaking setting baked into the formula.
    pub fn symmetry(&self) -> SymmetryBreaking {
        self.symmetry
    }

    /// The defining CNF: Tseitin clauses for the property and asserted
    /// symmetry-breaking predicates, but no assertion of the property itself.
    pub fn defining_cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// The literal equivalent to the property.
    pub fn property_root(&self) -> Lit {
        self.property_root
    }

    /// CNF asserting the property (φ, optionally ∧ SB).
    pub fn cnf_positive(&self) -> Cnf {
        self.positive.clone()
    }

    /// CNF asserting the negation of the property (¬φ, optionally ∧ SB).
    pub fn cnf_negative(&self) -> Cnf {
        self.negative.clone()
    }

    /// Borrowed view of [`Self::cnf_positive`] — both assertions are built
    /// once at translation time, so per-model counting loops can hand the
    /// counter a reference instead of cloning the whole formula per query.
    pub fn cnf_positive_ref(&self) -> &Cnf {
        &self.positive
    }

    /// Borrowed view of [`Self::cnf_negative`].
    pub fn cnf_negative_ref(&self) -> &Cnf {
        &self.negative
    }
}

/// A matrix of propositional formulas denoting a relational expression of
/// arity 1 (length `n`) or 2 (length `n * n`, row-major).
#[derive(Debug, Clone)]
struct ExprMatrix {
    arity: usize,
    n: usize,
    entries: Vec<Rc<BoolExpr>>,
}

impl ExprMatrix {
    fn new(arity: usize, n: usize, fill: Rc<BoolExpr>) -> Self {
        let size = n.pow(arity as u32);
        ExprMatrix {
            arity,
            n,
            entries: vec![fill; size],
        }
    }

    fn get1(&self, i: usize) -> Rc<BoolExpr> {
        debug_assert_eq!(self.arity, 1);
        Rc::clone(&self.entries[i])
    }

    fn get2(&self, i: usize, j: usize) -> Rc<BoolExpr> {
        debug_assert_eq!(self.arity, 2);
        Rc::clone(&self.entries[i * self.n + j])
    }

    fn set1(&mut self, i: usize, e: Rc<BoolExpr>) {
        debug_assert_eq!(self.arity, 1);
        self.entries[i] = e;
    }

    fn set2(&mut self, i: usize, j: usize, e: Rc<BoolExpr>) {
        debug_assert_eq!(self.arity, 2);
        self.entries[i * self.n + j] = e;
    }
}

/// Environment mapping quantified variables to atoms during translation.
#[derive(Debug, Clone, Default)]
struct TranslateEnv {
    bindings: Vec<Option<usize>>,
}

impl TranslateEnv {
    fn bind(&self, v: QuantVar, atom: usize) -> TranslateEnv {
        let mut out = self.clone();
        if out.bindings.len() <= v.0 {
            out.bindings.resize(v.0 + 1, None);
        }
        out.bindings[v.0] = Some(atom);
        out
    }

    fn lookup(&self, v: QuantVar) -> usize {
        self.bindings
            .get(v.0)
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("unbound quantified variable {v} during translation"))
    }
}

/// The primary variable for the adjacency-matrix entry `(i, j)` at scope `n`.
pub fn primary_var(n: usize, i: usize, j: usize) -> u32 {
    (i * n + j) as u32
}

fn translate_expr(expr: &Expr, n: usize, env: &TranslateEnv) -> ExprMatrix {
    match expr {
        Expr::Rel => {
            let mut m = ExprMatrix::new(2, n, BoolExpr::fls());
            for i in 0..n {
                for j in 0..n {
                    m.set2(i, j, BoolExpr::var(primary_var(n, i, j)));
                }
            }
            m
        }
        Expr::Iden => {
            let mut m = ExprMatrix::new(2, n, BoolExpr::fls());
            for i in 0..n {
                m.set2(i, i, BoolExpr::tru());
            }
            m
        }
        Expr::Univ => ExprMatrix::new(1, n, BoolExpr::tru()),
        Expr::Empty(a) => ExprMatrix::new(*a, n, BoolExpr::fls()),
        Expr::Var(v) => {
            let atom = env.lookup(*v);
            let mut m = ExprMatrix::new(1, n, BoolExpr::fls());
            m.set1(atom, BoolExpr::tru());
            m
        }
        Expr::Union(a, b) => zip_matrices(a, b, n, env, BoolExpr::or2),
        Expr::Intersect(a, b) => zip_matrices(a, b, n, env, BoolExpr::and2),
        Expr::Diff(a, b) => zip_matrices(a, b, n, env, |x, y| BoolExpr::and2(x, BoolExpr::not(y))),
        Expr::Join(a, b) => {
            let ma = translate_expr(a, n, env);
            let mb = translate_expr(b, n, env);
            join_matrices(&ma, &mb, n)
        }
        Expr::Product(a, b) => {
            let ma = translate_expr(a, n, env);
            let mb = translate_expr(b, n, env);
            debug_assert_eq!(ma.arity, 1);
            debug_assert_eq!(mb.arity, 1);
            let mut m = ExprMatrix::new(2, n, BoolExpr::fls());
            for i in 0..n {
                for j in 0..n {
                    m.set2(i, j, BoolExpr::and2(ma.get1(i), mb.get1(j)));
                }
            }
            m
        }
        Expr::Transpose(a) => {
            let ma = translate_expr(a, n, env);
            let mut m = ExprMatrix::new(2, n, BoolExpr::fls());
            for i in 0..n {
                for j in 0..n {
                    m.set2(i, j, ma.get2(j, i));
                }
            }
            m
        }
        Expr::Closure(a) => {
            let ma = translate_expr(a, n, env);
            closure_matrix(&ma, n, false)
        }
        Expr::ReflClosure(a) => {
            let ma = translate_expr(a, n, env);
            closure_matrix(&ma, n, true)
        }
    }
}

fn zip_matrices(
    a: &Expr,
    b: &Expr,
    n: usize,
    env: &TranslateEnv,
    op: impl Fn(Rc<BoolExpr>, Rc<BoolExpr>) -> Rc<BoolExpr>,
) -> ExprMatrix {
    let ma = translate_expr(a, n, env);
    let mb = translate_expr(b, n, env);
    debug_assert_eq!(ma.arity, mb.arity);
    let mut out = ExprMatrix::new(ma.arity, n, BoolExpr::fls());
    for (idx, (x, y)) in ma.entries.iter().zip(&mb.entries).enumerate() {
        out.entries[idx] = op(Rc::clone(x), Rc::clone(y));
    }
    out
}

fn join_matrices(a: &ExprMatrix, b: &ExprMatrix, n: usize) -> ExprMatrix {
    match (a.arity, b.arity) {
        (1, 2) => {
            let mut m = ExprMatrix::new(1, n, BoolExpr::fls());
            for j in 0..n {
                let terms: Vec<Rc<BoolExpr>> = (0..n)
                    .map(|i| BoolExpr::and2(a.get1(i), b.get2(i, j)))
                    .collect();
                m.set1(j, BoolExpr::or(terms));
            }
            m
        }
        (2, 1) => {
            let mut m = ExprMatrix::new(1, n, BoolExpr::fls());
            for i in 0..n {
                let terms: Vec<Rc<BoolExpr>> = (0..n)
                    .map(|j| BoolExpr::and2(a.get2(i, j), b.get1(j)))
                    .collect();
                m.set1(i, BoolExpr::or(terms));
            }
            m
        }
        (2, 2) => {
            let mut m = ExprMatrix::new(2, n, BoolExpr::fls());
            for i in 0..n {
                for k in 0..n {
                    let terms: Vec<Rc<BoolExpr>> = (0..n)
                        .map(|j| BoolExpr::and2(a.get2(i, j), b.get2(j, k)))
                        .collect();
                    m.set2(i, k, BoolExpr::or(terms));
                }
            }
            m
        }
        (x, y) => panic!("join of arities {x} and {y} is not supported"),
    }
}

fn closure_matrix(a: &ExprMatrix, n: usize, reflexive: bool) -> ExprMatrix {
    debug_assert_eq!(a.arity, 2);
    // Iterated squaring: after k rounds the matrix covers paths of length
    // up to 2^k, so ceil(log2(n)) rounds suffice.
    let mut cur = a.clone();
    let mut len = 1usize;
    while len < n {
        let squared = join_matrices(&cur, &cur, n);
        let mut next = ExprMatrix::new(2, n, BoolExpr::fls());
        for i in 0..n {
            for j in 0..n {
                next.set2(i, j, BoolExpr::or2(cur.get2(i, j), squared.get2(i, j)));
            }
        }
        cur = next;
        len *= 2;
    }
    if reflexive {
        for i in 0..n {
            cur.set2(i, i, BoolExpr::tru());
        }
    }
    cur
}

/// Translates a closed formula at scope `n` to a propositional formula over
/// the primary variables.
pub fn translate_formula(formula: &Formula, n: usize) -> Rc<BoolExpr> {
    translate_formula_env(formula, n, &TranslateEnv::default())
}

fn translate_formula_env(formula: &Formula, n: usize, env: &TranslateEnv) -> Rc<BoolExpr> {
    match formula {
        Formula::True => BoolExpr::tru(),
        Formula::False => BoolExpr::fls(),
        Formula::Subset(a, b) => {
            let ma = translate_expr(a, n, env);
            let mb = translate_expr(b, n, env);
            debug_assert_eq!(ma.arity, mb.arity);
            let conj: Vec<Rc<BoolExpr>> = ma
                .entries
                .iter()
                .zip(&mb.entries)
                .map(|(x, y)| BoolExpr::implies(Rc::clone(x), Rc::clone(y)))
                .collect();
            BoolExpr::and(conj)
        }
        Formula::Equal(a, b) => {
            let ma = translate_expr(a, n, env);
            let mb = translate_expr(b, n, env);
            debug_assert_eq!(ma.arity, mb.arity);
            let conj: Vec<Rc<BoolExpr>> = ma
                .entries
                .iter()
                .zip(&mb.entries)
                .map(|(x, y)| BoolExpr::iff(Rc::clone(x), Rc::clone(y)))
                .collect();
            BoolExpr::and(conj)
        }
        Formula::Some(e) => {
            let m = translate_expr(e, n, env);
            BoolExpr::or(m.entries.clone())
        }
        Formula::No(e) => {
            let m = translate_expr(e, n, env);
            BoolExpr::not(BoolExpr::or(m.entries.clone()))
        }
        Formula::Lone(e) => {
            let m = translate_expr(e, n, env);
            at_most_one(&m.entries)
        }
        Formula::One(e) => {
            let m = translate_expr(e, n, env);
            BoolExpr::and2(BoolExpr::or(m.entries.clone()), at_most_one(&m.entries))
        }
        Formula::Not(f) => BoolExpr::not(translate_formula_env(f, n, env)),
        Formula::And(fs) => BoolExpr::and(
            fs.iter()
                .map(|f| translate_formula_env(f, n, env))
                .collect(),
        ),
        Formula::Or(fs) => BoolExpr::or(
            fs.iter()
                .map(|f| translate_formula_env(f, n, env))
                .collect(),
        ),
        Formula::Implies(a, b) => BoolExpr::implies(
            translate_formula_env(a, n, env),
            translate_formula_env(b, n, env),
        ),
        Formula::Iff(a, b) => BoolExpr::iff(
            translate_formula_env(a, n, env),
            translate_formula_env(b, n, env),
        ),
        Formula::All(v, body) => {
            let conj: Vec<Rc<BoolExpr>> = (0..n)
                .map(|atom| translate_formula_env(body, n, &env.bind(*v, atom)))
                .collect();
            BoolExpr::and(conj)
        }
        Formula::Exists(v, body) => {
            let disj: Vec<Rc<BoolExpr>> = (0..n)
                .map(|atom| translate_formula_env(body, n, &env.bind(*v, atom)))
                .collect();
            BoolExpr::or(disj)
        }
    }
}

/// Pairwise at-most-one constraint over a list of propositional formulas.
fn at_most_one(entries: &[Rc<BoolExpr>]) -> Rc<BoolExpr> {
    let mut conj = Vec::new();
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            conj.push(BoolExpr::not(BoolExpr::and2(
                Rc::clone(&entries[i]),
                Rc::clone(&entries[j]),
            )));
        }
    }
    BoolExpr::and(conj)
}

/// Translates a formula to CNF at the given scope, producing a
/// [`GroundTruth`] whose projection set is the `scope²` primary variables.
///
/// Symmetry-breaking predicates selected in `options` are asserted; the
/// property itself is only defined and can be asserted positively or
/// negatively through [`GroundTruth::cnf_positive`] /
/// [`GroundTruth::cnf_negative`].
pub fn translate_to_cnf(formula: &Formula, options: TranslateOptions) -> GroundTruth {
    let n = options.scope;
    let num_primary = n * n;
    let prop_expr = translate_formula(formula, n);
    let mut enc = TseitinEncoder::new(num_primary);
    let property_root = enc.encode(&prop_expr);
    if options.symmetry.is_enabled() {
        let sb_expr = symmetry_breaking_expr(n, options.symmetry);
        enc.assert(&sb_expr);
    }
    let cnf = enc.into_cnf();
    let mut positive = cnf.clone();
    positive.add_unit(property_root);
    let mut negative = cnf.clone();
    negative.add_unit(!property_root);
    GroundTruth {
        scope: n,
        cnf,
        property_root,
        symmetry: options.symmetry,
        positive,
        negative,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, Formula, QuantVar};
    use crate::eval::eval_formula;
    use crate::instance::RelInstance;
    use satkit::enumerate::{enumerate_projected, EnumerateConfig};

    /// Exhaustively checks that the propositional translation of a formula
    /// agrees with the direct evaluator on every instance at scope `n`.
    fn check_translation_agrees(formula: &Formula, n: usize) {
        let expr = translate_formula(formula, n);
        for bits in 0u64..(1 << (n * n)) {
            let assignment: Vec<bool> = (0..n * n).map(|k| bits >> k & 1 == 1).collect();
            let inst = RelInstance::from_bits(n, assignment.clone());
            assert_eq!(
                expr.eval(&assignment),
                eval_formula(formula, &inst),
                "formula {formula} disagrees on instance {bits:b} at scope {n}"
            );
        }
    }

    fn reflexive() -> Rc<Formula> {
        let s = QuantVar(0);
        Formula::all(s, Formula::pair_in(Expr::var(s), Expr::var(s), Expr::rel()))
    }

    fn symmetric() -> Rc<Formula> {
        let s = QuantVar(0);
        let t = QuantVar(1);
        Formula::all_many(
            &[s, t],
            Formula::implies(
                Formula::pair_in(Expr::var(s), Expr::var(t), Expr::rel()),
                Formula::pair_in(Expr::var(t), Expr::var(s), Expr::rel()),
            ),
        )
    }

    #[test]
    fn reflexive_translation_agrees_with_evaluator() {
        check_translation_agrees(&reflexive(), 2);
        check_translation_agrees(&reflexive(), 3);
    }

    #[test]
    fn symmetric_translation_agrees_with_evaluator() {
        check_translation_agrees(&symmetric(), 3);
    }

    #[test]
    fn closure_translation_agrees_with_evaluator() {
        // "r is its own transitive closure" is equivalent to transitivity.
        let f = Formula::equal(Expr::closure(Expr::rel()), Expr::rel());
        check_translation_agrees(&f, 3);
    }

    #[test]
    fn multiplicity_translation_agrees_with_evaluator() {
        let s = QuantVar(0);
        // all s | one s.r (every atom has exactly one successor)
        let f = Formula::all(s, Formula::one(Expr::join(Expr::var(s), Expr::rel())));
        check_translation_agrees(&f, 3);
        // lone variant
        let g = Formula::all(s, Formula::lone(Expr::join(Expr::var(s), Expr::rel())));
        check_translation_agrees(&g, 3);
    }

    #[test]
    fn ground_truth_counts_reflexive_scope2() {
        // Reflexive relations on 2 atoms: diagonal fixed, 2 free bits -> 4.
        let gt = translate_to_cnf(&reflexive(), TranslateOptions::new(2));
        let cnf = gt.cnf_positive();
        let sols = enumerate_projected(&cnf, &[], &EnumerateConfig::default());
        assert_eq!(sols.len(), 4);
        // And the complement: 16 - 4 = 12.
        let neg = gt.cnf_negative();
        let sols_neg = enumerate_projected(&neg, &[], &EnumerateConfig::default());
        assert_eq!(sols_neg.len(), 12);
    }

    #[test]
    fn ground_truth_respects_symmetry_breaking() {
        // Equivalence-free sanity check: counting all relations on 3 atoms
        // with full symmetry breaking yields the number of isomorphism
        // classes (104), and without it the full 512.
        let gt_all = translate_to_cnf(&Formula::True, TranslateOptions::new(3));
        let all = enumerate_projected(&gt_all.cnf_positive(), &[], &EnumerateConfig::default());
        assert_eq!(all.len(), 512);

        let gt_sb = translate_to_cnf(
            &Formula::True,
            TranslateOptions::new(3).with_symmetry(SymmetryBreaking::Full),
        );
        let kept = enumerate_projected(&gt_sb.cnf_positive(), &[], &EnumerateConfig::default());
        assert_eq!(kept.len(), 104);
    }

    #[test]
    fn primary_var_indexing_is_row_major() {
        assert_eq!(primary_var(4, 0, 0), 0);
        assert_eq!(primary_var(4, 1, 0), 4);
        assert_eq!(primary_var(4, 2, 3), 11);
    }

    #[test]
    fn projection_set_is_primary_block() {
        let gt = translate_to_cnf(&reflexive(), TranslateOptions::new(3));
        assert_eq!(gt.num_primary(), 9);
        assert_eq!(gt.defining_cnf().projection().len(), 9);
    }
}
