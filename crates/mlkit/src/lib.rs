//! # mlkit
//!
//! From-scratch machine-learning substrate for the MCML reproduction.
//!
//! The MCML study trains six off-the-shelf Scikit-Learn models on binary
//! feature vectors (linearized adjacency matrices). This crate implements
//! the same six model families natively in Rust:
//!
//! * [`tree`] — CART decision trees (the model family MCML's counting
//!   metrics apply to);
//! * [`forest`] — random forests;
//! * [`adaboost`] — AdaBoost (SAMME) over shallow trees;
//! * [`gbdt`] — gradient-boosted regression trees with logistic loss;
//! * [`svm`] — a linear SVM trained with the Pegasos sub-gradient method;
//! * [`mlp`] — a multi-layer perceptron trained with SGD;
//!
//! plus [`data`] (datasets, splits, class-ratio resampling) and [`metrics`]
//! (confusion matrices, accuracy / precision / recall / F1).

pub mod adaboost;
pub mod data;
pub mod forest;
pub mod gbdt;
pub mod metrics;
pub mod mlp;
pub mod quant;
pub mod svm;
pub mod tree;

pub use data::Dataset;
pub use metrics::{BinaryMetrics, ConfusionMatrix};
pub use tree::{DecisionTree, TreePath};

/// A trained binary classifier over fixed-length binary feature vectors.
///
/// All six model families implement this trait; the MCML counting metrics
/// additionally require access to decision-tree structure and therefore only
/// apply to [`DecisionTree`].
pub trait Classifier {
    /// Predicts the label (true = positive class) for one feature vector.
    fn predict(&self, features: &[u8]) -> bool;

    /// Predicts labels for a batch of feature vectors.
    fn predict_batch(&self, features: &[Vec<u8>]) -> Vec<bool> {
        features.iter().map(|f| self.predict(f)).collect()
    }

    /// A short human-readable name for reports (e.g. `"DT"`, `"SVM"`).
    fn model_name(&self) -> &'static str;
}
