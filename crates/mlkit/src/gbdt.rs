//! Gradient-boosted decision trees with logistic loss (the paper's `GBDT`
//! model).
//!
//! The ensemble maintains an additive score `F(x)`; each round fits a small
//! regression tree to the negative gradient of the logistic loss (the
//! residual `y - sigmoid(F(x))`), with leaf values set by a single Newton
//! step, and adds it with a learning rate. Prediction thresholds
//! `sigmoid(F(x))` at 0.5.

use crate::data::Dataset;
use crate::Classifier;

/// Hyper-parameters of a [`GradientBoosting`] ensemble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbdtConfig {
    /// Number of boosting rounds.
    pub num_rounds: usize,
    /// Depth of each regression tree.
    pub max_depth: usize,
    /// Learning rate (shrinkage).
    pub learning_rate: f64,
    /// Minimum number of samples in a node to keep splitting.
    pub min_samples_split: usize,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            num_rounds: 100,
            max_depth: 3,
            learning_rate: 0.1,
            min_samples_split: 2,
        }
    }
}

/// A regression tree node over binary features.
#[derive(Debug, Clone, PartialEq)]
enum RegNode {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        left: usize,
        right: usize,
    },
}

/// A regression tree fit to residuals.
#[derive(Debug, Clone, PartialEq)]
struct RegressionTree {
    nodes: Vec<RegNode>,
    root: usize,
}

impl RegressionTree {
    /// Fits a tree minimizing squared error on `(features, gradients)` with
    /// Newton leaf values `sum(g) / sum(h)`.
    fn fit(features: &[Vec<u8>], gradients: &[f64], hessians: &[f64], config: &GbdtConfig) -> Self {
        let mut builder = RegBuilder {
            features,
            gradients,
            hessians,
            config,
            nodes: Vec::new(),
        };
        let all: Vec<usize> = (0..features.len()).collect();
        let root = builder.build(&all, 0);
        RegressionTree {
            nodes: builder.nodes,
            root,
        }
    }

    fn predict(&self, features: &[u8]) -> f64 {
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                RegNode::Leaf { value } => return *value,
                RegNode::Split {
                    feature,
                    left,
                    right,
                } => {
                    node = if features[*feature] != 0 {
                        *right
                    } else {
                        *left
                    };
                }
            }
        }
    }
}

struct RegBuilder<'a> {
    features: &'a [Vec<u8>],
    gradients: &'a [f64],
    hessians: &'a [f64],
    config: &'a GbdtConfig,
    nodes: Vec<RegNode>,
}

impl RegBuilder<'_> {
    fn build(&mut self, indices: &[usize], depth: usize) -> usize {
        let (g_sum, h_sum) = self.sums(indices);
        let leaf_value = newton_value(g_sum, h_sum);
        if depth >= self.config.max_depth || indices.len() < self.config.min_samples_split {
            return self.leaf(leaf_value);
        }
        match self.best_split(indices, g_sum, h_sum) {
            None => self.leaf(leaf_value),
            Some(feature) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| self.features[i][feature] == 0);
                if left_idx.is_empty() || right_idx.is_empty() {
                    return self.leaf(leaf_value);
                }
                let left = self.build(&left_idx, depth + 1);
                let right = self.build(&right_idx, depth + 1);
                self.nodes.push(RegNode::Split {
                    feature,
                    left,
                    right,
                });
                self.nodes.len() - 1
            }
        }
    }

    fn leaf(&mut self, value: f64) -> usize {
        self.nodes.push(RegNode::Leaf { value });
        self.nodes.len() - 1
    }

    fn sums(&self, indices: &[usize]) -> (f64, f64) {
        let g = indices.iter().map(|&i| self.gradients[i]).sum();
        let h = indices.iter().map(|&i| self.hessians[i]).sum();
        (g, h)
    }

    /// Gain of splitting = score(left) + score(right) - score(parent) where
    /// score(S) = (sum g)^2 / (sum h), the standard second-order criterion.
    fn best_split(&self, indices: &[usize], g_sum: f64, h_sum: f64) -> Option<usize> {
        let parent_score = score(g_sum, h_sum);
        let num_features = self.features.first().map_or(0, Vec::len);
        let mut best: Option<(usize, f64)> = None;
        for f in 0..num_features {
            let mut g_right = 0.0;
            let mut h_right = 0.0;
            for &i in indices {
                if self.features[i][f] != 0 {
                    g_right += self.gradients[i];
                    h_right += self.hessians[i];
                }
            }
            let g_left = g_sum - g_right;
            let h_left = h_sum - h_right;
            if h_left <= 1e-12 || h_right <= 1e-12 {
                continue;
            }
            let gain = score(g_left, h_left) + score(g_right, h_right) - parent_score;
            if gain > -1e-9 && best.is_none_or(|(_, g)| gain > g) {
                best = Some((f, gain));
            }
        }
        best.map(|(f, _)| f)
    }
}

fn score(g: f64, h: f64) -> f64 {
    if h <= 0.0 {
        0.0
    } else {
        g * g / h
    }
}

fn newton_value(g: f64, h: f64) -> f64 {
    if h <= 1e-12 {
        0.0
    } else {
        g / h
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// A trained gradient-boosting ensemble.
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    base_score: f64,
    trees: Vec<RegressionTree>,
    config: GbdtConfig,
}

impl GradientBoosting {
    /// Trains the ensemble.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn fit(dataset: &Dataset, config: GbdtConfig) -> Self {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        let n = dataset.len();
        let pos = dataset.labels().iter().filter(|&&l| l).count() as f64;
        // Initial log-odds, clamped to avoid infinities on one-class data.
        let p0 = (pos / n as f64).clamp(1e-6, 1.0 - 1e-6);
        let base_score = (p0 / (1.0 - p0)).ln();

        let mut scores = vec![base_score; n];
        let mut trees = Vec::with_capacity(config.num_rounds);
        for _ in 0..config.num_rounds {
            let mut gradients = Vec::with_capacity(n);
            let mut hessians = Vec::with_capacity(n);
            for (i, &label) in dataset.labels().iter().enumerate() {
                let p = sigmoid(scores[i]);
                let y = if label { 1.0 } else { 0.0 };
                gradients.push(y - p);
                hessians.push((p * (1.0 - p)).max(1e-9));
            }
            let tree = RegressionTree::fit(dataset.features(), &gradients, &hessians, &config);
            for (i, x) in dataset.features().iter().enumerate() {
                scores[i] += config.learning_rate * tree.predict(x);
            }
            trees.push(tree);
        }
        GradientBoosting {
            base_score,
            trees,
            config,
        }
    }

    /// The raw additive score `F(x)` before the sigmoid.
    pub fn decision_function(&self, features: &[u8]) -> f64 {
        self.base_score
            + self
                .trees
                .iter()
                .map(|t| self.config.learning_rate * t.predict(features))
                .sum::<f64>()
    }

    /// The ensemble's hyper-parameters.
    pub fn config(&self) -> &GbdtConfig {
        &self.config
    }
}

impl Classifier for GradientBoosting {
    fn predict(&self, features: &[u8]) -> bool {
        sigmoid(self.decision_function(features)) >= 0.5
    }

    fn model_name(&self) -> &'static str {
        "GBDT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset_from_fn(f: impl Fn(&[u8]) -> bool) -> Dataset {
        let mut d = Dataset::new(5);
        for bits in 0u8..32 {
            let row: Vec<u8> = (0..5).map(|k| (bits >> k) & 1).collect();
            let label = f(&row);
            d.push(row, label);
        }
        d
    }

    fn accuracy(model: &impl Classifier, d: &Dataset) -> f64 {
        d.iter().filter(|(x, y)| model.predict(x) == *y).count() as f64 / d.len() as f64
    }

    #[test]
    fn learns_single_feature() {
        let d = dataset_from_fn(|x| x[1] == 1);
        let g = GradientBoosting::fit(&d, GbdtConfig::default());
        assert_eq!(accuracy(&g, &d), 1.0);
    }

    #[test]
    fn learns_conjunction() {
        let d = dataset_from_fn(|x| x[0] == 1 && x[4] == 1);
        let g = GradientBoosting::fit(&d, GbdtConfig::default());
        assert!(accuracy(&g, &d) >= 0.95);
    }

    #[test]
    fn learns_xor_with_depth() {
        let d = dataset_from_fn(|x| (x[0] ^ x[1]) == 1);
        let g = GradientBoosting::fit(
            &d,
            GbdtConfig {
                max_depth: 3,
                num_rounds: 200,
                ..GbdtConfig::default()
            },
        );
        assert!(accuracy(&g, &d) >= 0.95);
    }

    #[test]
    fn handles_single_class() {
        let mut d = Dataset::new(2);
        d.push(vec![0, 0], false);
        d.push(vec![1, 1], false);
        let g = GradientBoosting::fit(&d, GbdtConfig::default());
        assert!(!g.predict(&[0, 1]));
    }

    #[test]
    fn decision_function_monotone_with_rounds() {
        let d = dataset_from_fn(|x| x[2] == 1);
        let short = GradientBoosting::fit(
            &d,
            GbdtConfig {
                num_rounds: 5,
                ..GbdtConfig::default()
            },
        );
        let long = GradientBoosting::fit(
            &d,
            GbdtConfig {
                num_rounds: 100,
                ..GbdtConfig::default()
            },
        );
        // More rounds should not hurt training accuracy.
        assert!(accuracy(&long, &d) >= accuracy(&short, &d));
        assert_eq!(long.model_name(), "GBDT");
    }
}
