//! Gradient-boosted decision trees with logistic loss (the paper's `GBDT`
//! model).
//!
//! The ensemble maintains an additive score `F(x)`; each round fits a small
//! regression tree to the negative gradient of the logistic loss (the
//! residual `y - sigmoid(F(x))`), with leaf values set by a single Newton
//! step, and adds it with a learning rate. Prediction thresholds
//! `sigmoid(F(x))` at 0.5.

use crate::data::Dataset;
use crate::Classifier;

/// Hyper-parameters of a [`GradientBoosting`] ensemble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbdtConfig {
    /// Number of boosting rounds.
    pub num_rounds: usize,
    /// Depth of each regression tree.
    pub max_depth: usize,
    /// Learning rate (shrinkage).
    pub learning_rate: f64,
    /// Minimum number of samples in a node to keep splitting.
    pub min_samples_split: usize,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            num_rounds: 100,
            max_depth: 3,
            learning_rate: 0.1,
            min_samples_split: 2,
        }
    }
}

/// A regression tree node over binary features.
#[derive(Debug, Clone, PartialEq)]
enum RegNode {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        left: usize,
        right: usize,
    },
}

/// A root-to-leaf path of one regression tree: the feature conditions
/// (`(feature, value)` — the split sends `value != 0` right) along the path
/// and the leaf value it reaches. The paths of one tree are pairwise
/// disjoint and exhaustive: every input follows exactly one.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionPath {
    /// The `(feature, branch)` tests fixed along the path.
    pub conditions: Vec<(usize, bool)>,
    /// The leaf value (the tree's contribution *before* shrinkage).
    pub value: f64,
}

/// A regression tree fit to residuals.
#[derive(Debug, Clone, PartialEq)]
struct RegressionTree {
    nodes: Vec<RegNode>,
    root: usize,
}

impl RegressionTree {
    /// Fits a tree minimizing squared error on `(features, gradients)` with
    /// Newton leaf values `sum(g) / sum(h)`.
    fn fit(features: &[Vec<u8>], gradients: &[f64], hessians: &[f64], config: &GbdtConfig) -> Self {
        let mut builder = RegBuilder {
            features,
            gradients,
            hessians,
            config,
            nodes: Vec::new(),
        };
        let all: Vec<usize> = (0..features.len()).collect();
        let root = builder.build(&all, 0);
        RegressionTree {
            nodes: builder.nodes,
            root,
        }
    }

    fn predict(&self, features: &[u8]) -> f64 {
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                RegNode::Leaf { value } => return *value,
                RegNode::Split {
                    feature,
                    left,
                    right,
                } => {
                    node = if features[*feature] != 0 {
                        *right
                    } else {
                        *left
                    };
                }
            }
        }
    }

    /// Enumerates the tree's root-to-leaf paths (depth-first, left before
    /// right).
    fn paths(&self) -> Vec<RegressionPath> {
        let mut out = Vec::new();
        let mut conditions = Vec::new();
        self.collect_paths(self.root, &mut conditions, &mut out);
        out
    }

    fn collect_paths(
        &self,
        node: usize,
        conditions: &mut Vec<(usize, bool)>,
        out: &mut Vec<RegressionPath>,
    ) {
        match &self.nodes[node] {
            RegNode::Leaf { value } => out.push(RegressionPath {
                conditions: conditions.clone(),
                value: *value,
            }),
            RegNode::Split {
                feature,
                left,
                right,
            } => {
                conditions.push((*feature, false));
                self.collect_paths(*left, conditions, out);
                conditions.pop();
                conditions.push((*feature, true));
                self.collect_paths(*right, conditions, out);
                conditions.pop();
            }
        }
    }
}

struct RegBuilder<'a> {
    features: &'a [Vec<u8>],
    gradients: &'a [f64],
    hessians: &'a [f64],
    config: &'a GbdtConfig,
    nodes: Vec<RegNode>,
}

impl RegBuilder<'_> {
    fn build(&mut self, indices: &[usize], depth: usize) -> usize {
        let (g_sum, h_sum) = self.sums(indices);
        let leaf_value = newton_value(g_sum, h_sum);
        if depth >= self.config.max_depth || indices.len() < self.config.min_samples_split {
            return self.leaf(leaf_value);
        }
        match self.best_split(indices, g_sum, h_sum) {
            None => self.leaf(leaf_value),
            Some(feature) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| self.features[i][feature] == 0);
                if left_idx.is_empty() || right_idx.is_empty() {
                    return self.leaf(leaf_value);
                }
                let left = self.build(&left_idx, depth + 1);
                let right = self.build(&right_idx, depth + 1);
                self.nodes.push(RegNode::Split {
                    feature,
                    left,
                    right,
                });
                self.nodes.len() - 1
            }
        }
    }

    fn leaf(&mut self, value: f64) -> usize {
        self.nodes.push(RegNode::Leaf { value });
        self.nodes.len() - 1
    }

    fn sums(&self, indices: &[usize]) -> (f64, f64) {
        let g = indices.iter().map(|&i| self.gradients[i]).sum();
        let h = indices.iter().map(|&i| self.hessians[i]).sum();
        (g, h)
    }

    /// Gain of splitting = score(left) + score(right) - score(parent) where
    /// score(S) = (sum g)^2 / (sum h), the standard second-order criterion.
    fn best_split(&self, indices: &[usize], g_sum: f64, h_sum: f64) -> Option<usize> {
        let parent_score = score(g_sum, h_sum);
        let num_features = self.features.first().map_or(0, Vec::len);
        let mut best: Option<(usize, f64)> = None;
        for f in 0..num_features {
            let mut g_right = 0.0;
            let mut h_right = 0.0;
            for &i in indices {
                if self.features[i][f] != 0 {
                    g_right += self.gradients[i];
                    h_right += self.hessians[i];
                }
            }
            let g_left = g_sum - g_right;
            let h_left = h_sum - h_right;
            if h_left <= 1e-12 || h_right <= 1e-12 {
                continue;
            }
            let gain = score(g_left, h_left) + score(g_right, h_right) - parent_score;
            if gain > -1e-9 && best.is_none_or(|(_, g)| gain > g) {
                best = Some((f, gain));
            }
        }
        best.map(|(f, _)| f)
    }
}

fn score(g: f64, h: f64) -> f64 {
    if h <= 0.0 {
        0.0
    } else {
        g * g / h
    }
}

fn newton_value(g: f64, h: f64) -> f64 {
    if h <= 1e-12 {
        0.0
    } else {
        g / h
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// A trained gradient-boosting ensemble.
#[derive(Debug, Clone)]
pub struct GradientBoosting {
    base_score: f64,
    trees: Vec<RegressionTree>,
    config: GbdtConfig,
    num_features: usize,
}

impl GradientBoosting {
    /// Trains the ensemble.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn fit(dataset: &Dataset, config: GbdtConfig) -> Self {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        let n = dataset.len();
        let pos = dataset.labels().iter().filter(|&&l| l).count() as f64;
        // Initial log-odds, clamped to avoid infinities on one-class data.
        let p0 = (pos / n as f64).clamp(1e-6, 1.0 - 1e-6);
        let base_score = (p0 / (1.0 - p0)).ln();

        let mut scores = vec![base_score; n];
        let mut trees = Vec::with_capacity(config.num_rounds);
        for _ in 0..config.num_rounds {
            let mut gradients = Vec::with_capacity(n);
            let mut hessians = Vec::with_capacity(n);
            for (i, &label) in dataset.labels().iter().enumerate() {
                let p = sigmoid(scores[i]);
                let y = if label { 1.0 } else { 0.0 };
                gradients.push(y - p);
                hessians.push((p * (1.0 - p)).max(1e-9));
            }
            let tree = RegressionTree::fit(dataset.features(), &gradients, &hessians, &config);
            for (i, x) in dataset.features().iter().enumerate() {
                scores[i] += config.learning_rate * tree.predict(x);
            }
            trees.push(tree);
        }
        GradientBoosting {
            base_score,
            trees,
            config,
            num_features: dataset.num_features(),
        }
    }

    /// The raw additive score `F(x)` before the sigmoid.
    pub fn decision_function(&self, features: &[u8]) -> f64 {
        self.base_score + self.tree_sum(features)
    }

    /// The shrunken tree contributions `Σᵢ lr·treeᵢ(x)`, accumulated in
    /// training order from `0.0` — the quantity the CNF/BDD additive-score
    /// compilers fold symbolically, so its accumulation order is part of
    /// the bit-exactness contract with [`predict_from_tree_sum`][p].
    ///
    /// [p]: GradientBoosting::predict_from_tree_sum
    pub fn tree_sum(&self, features: &[u8]) -> f64 {
        self.trees
            .iter()
            .map(|t| self.config.learning_rate * t.predict(features))
            .sum::<f64>()
    }

    /// The ensemble's prediction given a value of [`tree_sum`][t],
    /// bit-identical to [`Classifier::predict`]: the same base score, the
    /// same sigmoid, the same `>= 0.5` threshold. (The threshold is *not*
    /// equivalent to `F(x) >= 0`: for scores within one ulp of zero the
    /// sigmoid rounds to exactly 0.5, so a symbolic encoder must thread the
    /// final state through this method rather than compare the raw score.)
    ///
    /// [t]: GradientBoosting::tree_sum
    pub fn predict_from_tree_sum(&self, tree_sum: f64) -> bool {
        sigmoid(self.base_score + tree_sum) >= 0.5
    }

    /// Number of input features the ensemble was trained on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// The initial log-odds score every prediction starts from.
    pub fn base_score(&self) -> f64 {
        self.base_score
    }

    /// Number of boosting rounds actually trained.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// The root-to-leaf paths of every regression tree, in training order
    /// (the accumulation order of [`tree_sum`](GradientBoosting::tree_sum)).
    /// Within one tree the paths partition the input space; the leaf values
    /// are pre-shrinkage (multiply by `config().learning_rate` for the
    /// contribution a firing leaf adds to the score).
    pub fn tree_paths(&self) -> Vec<Vec<RegressionPath>> {
        self.trees.iter().map(RegressionTree::paths).collect()
    }

    /// The ensemble's hyper-parameters.
    pub fn config(&self) -> &GbdtConfig {
        &self.config
    }
}

impl Classifier for GradientBoosting {
    fn predict(&self, features: &[u8]) -> bool {
        self.predict_from_tree_sum(self.tree_sum(features))
    }

    fn model_name(&self) -> &'static str {
        "GBDT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset_from_fn(f: impl Fn(&[u8]) -> bool) -> Dataset {
        let mut d = Dataset::new(5);
        for bits in 0u8..32 {
            let row: Vec<u8> = (0..5).map(|k| (bits >> k) & 1).collect();
            let label = f(&row);
            d.push(row, label);
        }
        d
    }

    fn accuracy(model: &impl Classifier, d: &Dataset) -> f64 {
        d.iter().filter(|(x, y)| model.predict(x) == *y).count() as f64 / d.len() as f64
    }

    #[test]
    fn learns_single_feature() {
        let d = dataset_from_fn(|x| x[1] == 1);
        let g = GradientBoosting::fit(&d, GbdtConfig::default());
        assert_eq!(accuracy(&g, &d), 1.0);
    }

    #[test]
    fn learns_conjunction() {
        let d = dataset_from_fn(|x| x[0] == 1 && x[4] == 1);
        let g = GradientBoosting::fit(&d, GbdtConfig::default());
        assert!(accuracy(&g, &d) >= 0.95);
    }

    #[test]
    fn learns_xor_with_depth() {
        let d = dataset_from_fn(|x| (x[0] ^ x[1]) == 1);
        let g = GradientBoosting::fit(
            &d,
            GbdtConfig {
                max_depth: 3,
                num_rounds: 200,
                ..GbdtConfig::default()
            },
        );
        assert!(accuracy(&g, &d) >= 0.95);
    }

    #[test]
    fn handles_single_class() {
        let mut d = Dataset::new(2);
        d.push(vec![0, 0], false);
        d.push(vec![1, 1], false);
        let g = GradientBoosting::fit(&d, GbdtConfig::default());
        assert!(!g.predict(&[0, 1]));
    }

    #[test]
    fn tree_paths_partition_and_reproduce_the_sum() {
        let d = dataset_from_fn(|x| (x[0] ^ x[1]) == 1 || x[3] == 1);
        let g = GradientBoosting::fit(
            &d,
            GbdtConfig {
                num_rounds: 12,
                max_depth: 2,
                ..GbdtConfig::default()
            },
        );
        assert_eq!(g.num_features(), 5);
        assert_eq!(g.num_trees(), 12);
        let per_tree = g.tree_paths();
        assert_eq!(per_tree.len(), g.num_trees());
        let lr = g.config().learning_rate;
        for bits in 0u8..32 {
            let row: Vec<u8> = (0..5).map(|k| (bits >> k) & 1).collect();
            // Exactly one path per tree fires, and replaying the shrunken
            // leaf values in training order is bit-identical to tree_sum.
            let mut sum = 0.0f64;
            for paths in &per_tree {
                let firing: Vec<&RegressionPath> = paths
                    .iter()
                    .filter(|p| p.conditions.iter().all(|&(f, v)| (row[f] != 0) == v))
                    .collect();
                assert_eq!(firing.len(), 1, "input {row:?}");
                sum += lr * firing[0].value;
            }
            assert_eq!(sum.to_bits(), g.tree_sum(&row).to_bits(), "input {row:?}");
            assert_eq!(g.predict_from_tree_sum(sum), g.predict(&row));
            assert_eq!(
                (g.base_score() + sum).to_bits(),
                g.decision_function(&row).to_bits()
            );
        }
    }

    #[test]
    fn sigmoid_threshold_differs_from_raw_sign_near_zero() {
        // The contract predict_from_tree_sum documents: within one ulp of
        // zero the sigmoid rounds to exactly 0.5, so thresholding the raw
        // score at zero would misclassify tiny negative scores.
        let mut d = Dataset::new(2);
        d.push(vec![0, 0], false);
        d.push(vec![1, 1], true);
        let g = GradientBoosting::fit(&d, GbdtConfig::default());
        let tiny = -1e-17 - g.base_score(); // base + tiny ≈ -1e-17 < 0
        assert!(g.base_score() + tiny < 0.0);
        assert!(
            g.predict_from_tree_sum(tiny),
            "sigmoid(-1e-17) rounds to 0.5"
        );
    }

    #[test]
    fn decision_function_monotone_with_rounds() {
        let d = dataset_from_fn(|x| x[2] == 1);
        let short = GradientBoosting::fit(
            &d,
            GbdtConfig {
                num_rounds: 5,
                ..GbdtConfig::default()
            },
        );
        let long = GradientBoosting::fit(
            &d,
            GbdtConfig {
                num_rounds: 100,
                ..GbdtConfig::default()
            },
        );
        // More rounds should not hurt training accuracy.
        assert!(accuracy(&long, &d) >= accuracy(&short, &d));
        assert_eq!(long.model_name(), "GBDT");
    }
}
