//! Datasets of binary feature vectors with binary labels.
//!
//! A dataset row is a linearized adjacency matrix (`n * n` features valued
//! 0/1) together with a label: 1 when the instance satisfies the relational
//! property under study, 0 otherwise. The utilities here mirror the paper's
//! experimental protocol: random (non-overlapping) train/test splits at
//! several ratios, balancing, and class-ratio resampling for the Table 9
//! sweep.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// A labeled dataset over fixed-length binary feature vectors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dataset {
    num_features: usize,
    features: Vec<Vec<u8>>,
    labels: Vec<bool>,
}

/// A train/test split ratio, e.g. 75:25.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitSpec {
    /// Percentage of samples used for training (1..=99).
    pub train_percent: u32,
}

impl SplitSpec {
    /// Creates a split spec.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= train_percent <= 99`.
    pub fn new(train_percent: u32) -> Self {
        assert!(
            (1..=99).contains(&train_percent),
            "train percent must be in 1..=99"
        );
        SplitSpec { train_percent }
    }

    /// The five ratios used throughout the paper: 75:25, 50:50, 25:75, 10:90
    /// and 1:99.
    pub fn paper_ratios() -> [SplitSpec; 5] {
        [
            SplitSpec::new(75),
            SplitSpec::new(50),
            SplitSpec::new(25),
            SplitSpec::new(10),
            SplitSpec::new(1),
        ]
    }

    /// The train fraction in `[0, 1]`.
    pub fn train_fraction(&self) -> f64 {
        f64::from(self.train_percent) / 100.0
    }
}

impl fmt::Display for SplitSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.train_percent, 100 - self.train_percent)
    }
}

impl Dataset {
    /// An empty dataset over `num_features` features.
    pub fn new(num_features: usize) -> Self {
        Dataset {
            num_features,
            features: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Number of features per sample.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if the feature vector has the wrong length.
    pub fn push(&mut self, features: Vec<u8>, label: bool) {
        assert_eq!(
            features.len(),
            self.num_features,
            "expected {} features",
            self.num_features
        );
        self.features.push(features);
        self.labels.push(label);
    }

    /// The feature matrix.
    pub fn features(&self) -> &[Vec<u8>] {
        &self.features
    }

    /// The labels.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// One sample.
    pub fn get(&self, index: usize) -> (&[u8], bool) {
        (&self.features[index], self.labels[index])
    }

    /// `(positives, negatives)` counts.
    pub fn class_counts(&self) -> (usize, usize) {
        let pos = self.labels.iter().filter(|&&l| l).count();
        (pos, self.len() - pos)
    }

    /// A new dataset containing the rows at `indices` (in that order).
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.num_features);
        for &i in indices {
            out.push(self.features[i].clone(), self.labels[i]);
        }
        out
    }

    /// Splits the dataset into non-overlapping train and test sets by drawing
    /// a random subset of the given fraction for training.
    ///
    /// The draw is stratified per class so that both splits keep the
    /// dataset's class balance (the paper's datasets are balanced and its
    /// splits preserve that).
    pub fn split(&self, spec: SplitSpec, seed: u64) -> (Dataset, Dataset) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut pos_idx: Vec<usize> = (0..self.len()).filter(|&i| self.labels[i]).collect();
        let mut neg_idx: Vec<usize> = (0..self.len()).filter(|&i| !self.labels[i]).collect();
        pos_idx.shuffle(&mut rng);
        neg_idx.shuffle(&mut rng);
        let frac = spec.train_fraction();
        // Guarantee at least one training sample per non-empty class so that
        // tiny datasets (small scopes) never produce an empty training set.
        let cut = |len: usize| -> usize {
            if len == 0 {
                0
            } else {
                (((len as f64) * frac).round() as usize).clamp(1, len)
            }
        };
        let pos_cut = cut(pos_idx.len());
        let neg_cut = cut(neg_idx.len());
        let mut train_idx: Vec<usize> = pos_idx[..pos_cut]
            .iter()
            .chain(&neg_idx[..neg_cut])
            .copied()
            .collect();
        let mut test_idx: Vec<usize> = pos_idx[pos_cut..]
            .iter()
            .chain(&neg_idx[neg_cut..])
            .copied()
            .collect();
        train_idx.shuffle(&mut rng);
        test_idx.shuffle(&mut rng);
        (self.select(&train_idx), self.select(&test_idx))
    }

    /// A shuffled copy.
    pub fn shuffled(&self, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut rng);
        self.select(&idx)
    }

    /// A random subsample of at most `n` rows (without replacement).
    pub fn subsample(&self, n: usize, seed: u64) -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut rng);
        idx.truncate(n);
        self.select(&idx)
    }

    /// Resamples the dataset (without replacement, per class) so that the
    /// result has approximately `positive_percent` percent positive samples
    /// and as many total rows as possible given the available samples.
    ///
    /// This implements the class-ratio sweep of Table 9 (99:1 ... 1:99).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= positive_percent <= 99`, or if one of the classes
    /// is empty.
    pub fn with_class_ratio(&self, positive_percent: u32, seed: u64) -> Dataset {
        assert!(
            (1..=99).contains(&positive_percent),
            "positive percent must be in 1..=99"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut pos_idx: Vec<usize> = (0..self.len()).filter(|&i| self.labels[i]).collect();
        let mut neg_idx: Vec<usize> = (0..self.len()).filter(|&i| !self.labels[i]).collect();
        assert!(
            !pos_idx.is_empty() && !neg_idx.is_empty(),
            "both classes must be non-empty to resample"
        );
        pos_idx.shuffle(&mut rng);
        neg_idx.shuffle(&mut rng);
        let p = f64::from(positive_percent) / 100.0;
        // Largest total size achievable with the requested ratio.
        let total_by_pos = (pos_idx.len() as f64 / p).floor() as usize;
        let total_by_neg = (neg_idx.len() as f64 / (1.0 - p)).floor() as usize;
        let total = total_by_pos.min(total_by_neg).max(2);
        let n_pos = ((total as f64) * p)
            .round()
            .clamp(1.0, pos_idx.len() as f64) as usize;
        let n_neg = (total - n_pos).clamp(1, neg_idx.len());
        let mut idx: Vec<usize> = pos_idx[..n_pos]
            .iter()
            .chain(&neg_idx[..n_neg])
            .copied()
            .collect();
        idx.shuffle(&mut rng);
        self.select(&idx)
    }

    /// Concatenates two datasets over the same feature space.
    ///
    /// # Panics
    ///
    /// Panics if the feature counts differ.
    pub fn concat(&self, other: &Dataset) -> Dataset {
        assert_eq!(self.num_features, other.num_features);
        let mut out = self.clone();
        for i in 0..other.len() {
            let (f, l) = other.get(i);
            out.push(f.to_vec(), l);
        }
        out
    }

    /// Iterates over `(features, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], bool)> {
        self.features
            .iter()
            .map(Vec::as_slice)
            .zip(self.labels.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n_pos: usize, n_neg: usize) -> Dataset {
        let mut d = Dataset::new(3);
        for i in 0..n_pos {
            d.push(vec![1, (i % 2) as u8, 0], true);
        }
        for i in 0..n_neg {
            d.push(vec![0, (i % 2) as u8, 1], false);
        }
        d
    }

    #[test]
    fn push_and_counts() {
        let d = toy(3, 5);
        assert_eq!(d.len(), 8);
        assert_eq!(d.class_counts(), (3, 5));
        assert_eq!(d.num_features(), 3);
    }

    #[test]
    #[should_panic(expected = "expected 3 features")]
    fn push_wrong_width_panics() {
        let mut d = Dataset::new(3);
        d.push(vec![1, 0], true);
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let d = toy(40, 40);
        let (train, test) = d.split(SplitSpec::new(25), 7);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(train.len(), 20);
        // Stratification: both splits keep the 50/50 balance.
        assert_eq!(train.class_counts().0, 10);
        assert_eq!(test.class_counts().0, 30);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let d = toy(30, 30);
        let (a1, b1) = d.split(SplitSpec::new(50), 3);
        let (a2, b2) = d.split(SplitSpec::new(50), 3);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        let (a3, _) = d.split(SplitSpec::new(50), 4);
        assert_ne!(a1, a3);
    }

    #[test]
    fn paper_ratios_are_the_five_from_the_study() {
        let r: Vec<String> = SplitSpec::paper_ratios()
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(r, vec!["75:25", "50:50", "25:75", "10:90", "1:99"]);
    }

    #[test]
    fn class_ratio_resampling() {
        let d = toy(500, 500);
        let skewed = d.with_class_ratio(90, 11);
        let (pos, neg) = skewed.class_counts();
        let frac = pos as f64 / (pos + neg) as f64;
        assert!((frac - 0.9).abs() < 0.03, "got positive fraction {frac}");
        let balanced = d.with_class_ratio(50, 11);
        let (p2, n2) = balanced.class_counts();
        assert!((p2 as i64 - n2 as i64).abs() <= 1);
    }

    #[test]
    fn subsample_and_shuffle_preserve_rows() {
        let d = toy(10, 10);
        let s = d.subsample(5, 1);
        assert_eq!(s.len(), 5);
        let sh = d.shuffled(2);
        assert_eq!(sh.len(), d.len());
        let (p, n) = sh.class_counts();
        assert_eq!((p, n), (10, 10));
    }

    #[test]
    fn concat_appends() {
        let a = toy(2, 2);
        let b = toy(1, 1);
        let c = a.concat(&b);
        assert_eq!(c.len(), 6);
        assert_eq!(c.class_counts(), (3, 3));
    }

    #[test]
    #[should_panic(expected = "train percent")]
    fn split_spec_rejects_zero() {
        SplitSpec::new(0);
    }
}
