//! Random forests: bagged CART trees with per-split feature subsampling and
//! majority voting (the paper's `RFT` model).

use crate::data::Dataset;
use crate::tree::{DecisionTree, TreeConfig};
use crate::Classifier;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Hyper-parameters of a [`RandomForest`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestConfig {
    /// Number of trees.
    pub num_trees: usize,
    /// Maximum depth of each tree (`None` = unlimited).
    pub max_depth: Option<usize>,
    /// Number of features considered per split (`None` = sqrt of the total).
    pub max_features: Option<usize>,
    /// RNG seed for bootstrap sampling and feature subsampling.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            num_trees: 50,
            max_depth: None,
            max_features: None,
            seed: 0,
        }
    }
}

/// A trained random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    config: ForestConfig,
}

impl RandomForest {
    /// Trains a forest of bootstrapped trees.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `num_trees` is 0.
    pub fn fit(dataset: &Dataset, config: ForestConfig) -> Self {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        assert!(config.num_trees > 0, "forest needs at least one tree");
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let max_features = config
            .max_features
            .unwrap_or_else(|| (dataset.num_features() as f64).sqrt().ceil() as usize)
            .max(1);
        let mut trees = Vec::with_capacity(config.num_trees);
        for t in 0..config.num_trees {
            // Bootstrap sample (with replacement) of the same size.
            let indices: Vec<usize> = (0..dataset.len())
                .map(|_| rng.gen_range(0..dataset.len()))
                .collect();
            let sample = dataset.select(&indices);
            let tree_config = TreeConfig {
                max_depth: config.max_depth,
                max_features: Some(max_features),
                seed: config.seed.wrapping_add(t as u64 + 1),
                ..TreeConfig::default()
            };
            trees.push(DecisionTree::fit(&sample, tree_config));
        }
        RandomForest { trees, config }
    }

    /// The trees of the forest.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// The forest's hyper-parameters.
    pub fn config(&self) -> &ForestConfig {
        &self.config
    }
}

impl Classifier for RandomForest {
    fn predict(&self, features: &[u8]) -> bool {
        let votes = self.trees.iter().filter(|t| t.predict(features)).count();
        votes * 2 >= self.trees.len()
    }

    fn model_name(&self) -> &'static str {
        "RFT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset_from_fn(f: impl Fn(&[u8]) -> bool) -> Dataset {
        let mut d = Dataset::new(5);
        for bits in 0u8..32 {
            let row: Vec<u8> = (0..5).map(|k| (bits >> k) & 1).collect();
            let label = f(&row);
            d.push(row, label);
        }
        d
    }

    #[test]
    fn learns_majority_function() {
        let d = dataset_from_fn(|x| x.iter().map(|&b| b as usize).sum::<usize>() >= 3);
        let f = RandomForest::fit(
            &d,
            ForestConfig {
                num_trees: 30,
                seed: 1,
                ..ForestConfig::default()
            },
        );
        let correct = d.iter().filter(|(x, y)| f.predict(x) == *y).count();
        assert!(
            correct as f64 / d.len() as f64 >= 0.9,
            "correct: {correct}/32"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let d = dataset_from_fn(|x| x[0] == 1 || x[3] == 1);
        let f1 = RandomForest::fit(
            &d,
            ForestConfig {
                seed: 7,
                num_trees: 10,
                ..ForestConfig::default()
            },
        );
        let f2 = RandomForest::fit(
            &d,
            ForestConfig {
                seed: 7,
                num_trees: 10,
                ..ForestConfig::default()
            },
        );
        for (x, _) in d.iter() {
            assert_eq!(f1.predict(x), f2.predict(x));
        }
    }

    #[test]
    fn number_of_trees_respected() {
        let d = dataset_from_fn(|x| x[2] == 1);
        let f = RandomForest::fit(
            &d,
            ForestConfig {
                num_trees: 13,
                ..ForestConfig::default()
            },
        );
        assert_eq!(f.trees().len(), 13);
        assert_eq!(f.model_name(), "RFT");
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_panics() {
        let d = dataset_from_fn(|x| x[0] == 1);
        RandomForest::fit(
            &d,
            ForestConfig {
                num_trees: 0,
                ..ForestConfig::default()
            },
        );
    }
}
