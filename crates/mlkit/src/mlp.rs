//! Multi-layer perceptron (the paper's `MLP` model).
//!
//! A feed-forward network with one ReLU hidden layer and a sigmoid output,
//! trained by mini-batch stochastic gradient descent with momentum on the
//! cross-entropy loss. Matches the "basic out-of-the-box" usage in the study
//! (Scikit-Learn's `MLPClassifier` defaults, scaled down).

use crate::data::Dataset;
use crate::Classifier;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Hyper-parameters of an [`Mlp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpConfig {
    /// Number of units in the hidden layer.
    pub hidden_units: usize,
    /// Number of training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// RNG seed for weight initialization and shuffling.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden_units: 64,
            epochs: 60,
            learning_rate: 0.05,
            momentum: 0.9,
            batch_size: 16,
            seed: 0,
        }
    }
}

/// A trained multi-layer perceptron.
#[derive(Debug, Clone)]
pub struct Mlp {
    // Hidden layer: w1[h][d], b1[h]; output layer: w2[h], b2.
    // Crate-visible so `quant` can derive fixed-point models.
    pub(crate) w1: Vec<Vec<f64>>,
    pub(crate) b1: Vec<f64>,
    pub(crate) w2: Vec<f64>,
    pub(crate) b2: f64,
    pub(crate) config: MlpConfig,
}

impl Mlp {
    /// Trains the network.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `hidden_units`/`batch_size` is 0.
    pub fn fit(dataset: &Dataset, config: MlpConfig) -> Self {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        assert!(config.hidden_units > 0, "need at least one hidden unit");
        assert!(config.batch_size > 0, "batch size must be positive");
        let d = dataset.num_features();
        let h = config.hidden_units;
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let scale = (2.0 / d as f64).sqrt();
        let mut w1: Vec<Vec<f64>> = (0..h)
            .map(|_| (0..d).map(|_| rng.gen_range(-scale..scale)).collect())
            .collect();
        let mut b1 = vec![0.0; h];
        let mut w2: Vec<f64> = (0..h).map(|_| rng.gen_range(-scale..scale)).collect();
        let mut b2 = 0.0;

        // Momentum buffers.
        let mut v_w1 = vec![vec![0.0; d]; h];
        let mut v_b1 = vec![0.0; h];
        let mut v_w2 = vec![0.0; h];
        let mut v_b2 = 0.0;

        let mut order: Vec<usize> = (0..dataset.len()).collect();
        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for batch in order.chunks(config.batch_size) {
                let mut g_w1 = vec![vec![0.0; d]; h];
                let mut g_b1 = vec![0.0; h];
                let mut g_w2 = vec![0.0; h];
                let mut g_b2 = 0.0;
                for &i in batch {
                    let (x, label) = dataset.get(i);
                    let y = if label { 1.0 } else { 0.0 };
                    // Forward.
                    let hidden: Vec<f64> = (0..h).map(|j| relu(dot(&w1[j], x) + b1[j])).collect();
                    let out = sigmoid(hidden.iter().zip(&w2).map(|(a, w)| a * w).sum::<f64>() + b2);
                    // Backward (cross-entropy + sigmoid gives a simple delta).
                    let delta_out = out - y;
                    g_b2 += delta_out;
                    for j in 0..h {
                        g_w2[j] += delta_out * hidden[j];
                        if hidden[j] > 0.0 {
                            let delta_h = delta_out * w2[j];
                            g_b1[j] += delta_h;
                            for (g, &xi) in g_w1[j].iter_mut().zip(x) {
                                *g += delta_h * f64::from(xi);
                            }
                        }
                    }
                }
                let scale = config.learning_rate / batch.len() as f64;
                for j in 0..h {
                    for k in 0..d {
                        v_w1[j][k] = config.momentum * v_w1[j][k] - scale * g_w1[j][k];
                        w1[j][k] += v_w1[j][k];
                    }
                    v_b1[j] = config.momentum * v_b1[j] - scale * g_b1[j];
                    b1[j] += v_b1[j];
                    v_w2[j] = config.momentum * v_w2[j] - scale * g_w2[j];
                    w2[j] += v_w2[j];
                }
                v_b2 = config.momentum * v_b2 - scale * g_b2;
                b2 += v_b2;
            }
        }
        Mlp {
            w1,
            b1,
            w2,
            b2,
            config,
        }
    }

    /// The predicted probability of the positive class.
    pub fn predict_proba(&self, features: &[u8]) -> f64 {
        let hidden: Vec<f64> = self
            .w1
            .iter()
            .zip(&self.b1)
            .map(|(w, b)| relu(dot(w, features) + b))
            .collect();
        sigmoid(hidden.iter().zip(&self.w2).map(|(a, w)| a * w).sum::<f64>() + self.b2)
    }

    /// The network's hyper-parameters.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }
}

fn dot(w: &[f64], x: &[u8]) -> f64 {
    w.iter().zip(x).map(|(wi, &xi)| wi * f64::from(xi)).sum()
}

fn relu(x: f64) -> f64 {
    x.max(0.0)
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl Classifier for Mlp {
    fn predict(&self, features: &[u8]) -> bool {
        self.predict_proba(features) >= 0.5
    }

    fn model_name(&self) -> &'static str {
        "MLP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset_from_fn(f: impl Fn(&[u8]) -> bool) -> Dataset {
        let mut d = Dataset::new(5);
        for bits in 0u8..32 {
            let row: Vec<u8> = (0..5).map(|k| (bits >> k) & 1).collect();
            let label = f(&row);
            d.push(row, label);
        }
        d
    }

    fn accuracy(model: &impl Classifier, d: &Dataset) -> f64 {
        d.iter().filter(|(x, y)| model.predict(x) == *y).count() as f64 / d.len() as f64
    }

    #[test]
    fn learns_single_feature() {
        let d = dataset_from_fn(|x| x[4] == 1);
        let m = Mlp::fit(&d, MlpConfig::default());
        assert!(accuracy(&m, &d) >= 0.95);
    }

    #[test]
    fn learns_xor() {
        let d = dataset_from_fn(|x| (x[0] ^ x[1]) == 1);
        let m = Mlp::fit(
            &d,
            MlpConfig {
                epochs: 300,
                hidden_units: 32,
                ..MlpConfig::default()
            },
        );
        assert!(accuracy(&m, &d) >= 0.9, "accuracy {}", accuracy(&m, &d));
    }

    #[test]
    fn probabilities_are_probabilities() {
        let d = dataset_from_fn(|x| x[0] == 1);
        let m = Mlp::fit(&d, MlpConfig::default());
        for (x, _) in d.iter() {
            let p = m.predict_proba(x);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = dataset_from_fn(|x| x[1] == 1 && x[2] == 1);
        let a = Mlp::fit(
            &d,
            MlpConfig {
                seed: 5,
                epochs: 10,
                ..MlpConfig::default()
            },
        );
        let b = Mlp::fit(
            &d,
            MlpConfig {
                seed: 5,
                epochs: 10,
                ..MlpConfig::default()
            },
        );
        for (x, _) in d.iter() {
            assert_eq!(a.predict_proba(x), b.predict_proba(x));
        }
        assert_eq!(a.model_name(), "MLP");
    }

    #[test]
    #[should_panic(expected = "hidden unit")]
    fn zero_hidden_units_panics() {
        let d = dataset_from_fn(|x| x[0] == 1);
        Mlp::fit(
            &d,
            MlpConfig {
                hidden_units: 0,
                ..MlpConfig::default()
            },
        );
    }
}
