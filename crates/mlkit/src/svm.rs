//! Linear support-vector machine trained with the Pegasos sub-gradient
//! method (the paper's `SVM` model).
//!
//! The model is `sign(w · x + b)` with the hinge-loss objective
//! `λ/2 ||w||² + mean(max(0, 1 - y (w·x + b)))`, optimized by stochastic
//! sub-gradient descent with the Pegasos step size `1 / (λ t)`.

use crate::data::Dataset;
use crate::Classifier;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Hyper-parameters of a [`LinearSvm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmConfig {
    /// Regularization strength λ.
    pub lambda: f64,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// RNG seed for the sample order.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            lambda: 1e-3,
            epochs: 60,
            seed: 0,
        }
    }
}

/// A trained linear SVM.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvm {
    pub(crate) weights: Vec<f64>,
    pub(crate) bias: f64,
    config: SvmConfig,
}

impl LinearSvm {
    /// Trains the SVM with Pegasos.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn fit(dataset: &Dataset, config: SvmConfig) -> Self {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        let d = dataset.num_features();
        let mut weights = vec![0.0; d];
        let mut bias = 0.0;
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        let mut t: u64 = 1;

        for _ in 0..config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let (x, label) = dataset.get(i);
                let y = if label { 1.0 } else { -1.0 };
                let eta = 1.0 / (config.lambda * t as f64);
                let margin = y * (dot(&weights, x) + bias);
                // Regularization shrinkage.
                for w in &mut weights {
                    *w *= 1.0 - eta * config.lambda;
                }
                if margin < 1.0 {
                    for (w, &xi) in weights.iter_mut().zip(x) {
                        *w += eta * y * f64::from(xi);
                    }
                    bias += eta * y;
                }
                t += 1;
            }
        }
        LinearSvm {
            weights,
            bias,
            config,
        }
    }

    /// The signed decision value `w · x + b`.
    pub fn decision_function(&self, features: &[u8]) -> f64 {
        dot(&self.weights, features) + self.bias
    }

    /// The learned weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// The SVM's hyper-parameters.
    pub fn config(&self) -> &SvmConfig {
        &self.config
    }
}

fn dot(w: &[f64], x: &[u8]) -> f64 {
    w.iter().zip(x).map(|(wi, &xi)| wi * f64::from(xi)).sum()
}

impl Classifier for LinearSvm {
    fn predict(&self, features: &[u8]) -> bool {
        self.decision_function(features) >= 0.0
    }

    fn model_name(&self) -> &'static str {
        "SVM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset_from_fn(f: impl Fn(&[u8]) -> bool) -> Dataset {
        let mut d = Dataset::new(5);
        for bits in 0u8..32 {
            let row: Vec<u8> = (0..5).map(|k| (bits >> k) & 1).collect();
            let label = f(&row);
            d.push(row, label);
        }
        d
    }

    fn accuracy(model: &impl Classifier, d: &Dataset) -> f64 {
        d.iter().filter(|(x, y)| model.predict(x) == *y).count() as f64 / d.len() as f64
    }

    #[test]
    fn learns_linearly_separable_function() {
        let d = dataset_from_fn(|x| x[0] == 1);
        let svm = LinearSvm::fit(&d, SvmConfig::default());
        assert_eq!(accuracy(&svm, &d), 1.0);
        // The informative feature should carry the largest weight.
        let w0 = svm.weights()[0].abs();
        assert!(svm.weights()[1..].iter().all(|w| w.abs() < w0));
    }

    #[test]
    fn learns_majority_function() {
        let d = dataset_from_fn(|x| x.iter().map(|&b| b as usize).sum::<usize>() >= 3);
        let svm = LinearSvm::fit(
            &d,
            SvmConfig {
                epochs: 200,
                ..SvmConfig::default()
            },
        );
        assert!(accuracy(&svm, &d) >= 0.9);
    }

    #[test]
    fn xor_is_not_linearly_separable() {
        let d = dataset_from_fn(|x| (x[0] ^ x[1]) == 1);
        let svm = LinearSvm::fit(&d, SvmConfig::default());
        // A linear model cannot exceed 75% on XOR over two of five features
        // (the rest being noise); it must however beat random guessing's
        // worst case by the class prior.
        let acc = accuracy(&svm, &d);
        assert!(acc <= 0.8, "linear model unexpectedly solved XOR: {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let d = dataset_from_fn(|x| x[2] == 1 || x[3] == 1);
        let a = LinearSvm::fit(
            &d,
            SvmConfig {
                seed: 9,
                ..SvmConfig::default()
            },
        );
        let b = LinearSvm::fit(
            &d,
            SvmConfig {
                seed: 9,
                ..SvmConfig::default()
            },
        );
        assert_eq!(a, b);
        assert_eq!(a.model_name(), "SVM");
    }
}
