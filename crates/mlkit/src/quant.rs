//! Post-training quantization: fixed-point integer models whose
//! predictions are pure integer arithmetic.
//!
//! The MCML counting metrics need a model whose decision function can be
//! compiled to CNF *exactly* — every float comparison is a bit-exactness
//! hazard. This module derives integer models from the trained float
//! ones:
//!
//! * [`QuantizedMlp`] — the hidden layer is **binarized**: each unit
//!   fires (+1) iff its fixed-point pre-activation `Σ q1ʲ·x + qb1ʲ` is
//!   ≥ 0, replacing the float model's ReLU with a sign activation; the
//!   output is the integer threshold `Σ q2ʲ·hⱼ + qb2 ≥ 0` over the ±1
//!   activations.
//! * [`QuantizedSvm`] — the linear decision function with weights and
//!   bias rounded to fixed point: `Σ qw·x + qb ≥ 0`.
//!
//! All weights are scaled by `2^bits` and rounded
//! (`q = round(w · 2^bits)`), so `bits` is the number of fractional bits
//! retained. [`QuantizedMlp::predict_quantized`] and
//! [`QuantizedSvm::predict_quantized`] evaluate in `i64` only — the CNF
//! encoders in `mcml` reproduce exactly this arithmetic, making the
//! encodings bit-identical to the predictions by construction.
//!
//! Binarization changes the hidden-layer semantics, so the quantized MLP
//! is a *different model* from its float parent; [`agreement_report`]
//! quantifies the drift instead of pretending it away.

use crate::data::Dataset;
use crate::mlp::Mlp;
use crate::svm::LinearSvm;
use crate::Classifier;

/// Default number of fractional bits kept by quantization (the
/// `--quant-bits` CLI default).
pub const DEFAULT_QUANT_BITS: u32 = 8;

/// Scales a float weight to fixed point with `bits` fractional bits.
fn fixed_point(w: f64, bits: u32) -> i64 {
    let scaled = w * (1i64 << bits) as f64;
    // Saturate rather than wrap on pathological weights; real trained
    // weights are O(1) and never come near the bound.
    if scaled >= i32::MAX as f64 {
        i64::from(i32::MAX)
    } else if scaled <= i32::MIN as f64 {
        i64::from(i32::MIN)
    } else {
        scaled.round() as i64
    }
}

/// A binarized, fixed-point MLP: sign-activation hidden layer over
/// integer weights, integer-threshold output over ±1 activations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedMlp {
    /// Hidden-layer weights `w1[h][d]`, scaled by `2^bits`.
    w1: Vec<Vec<i64>>,
    /// Hidden-layer biases, scaled by `2^bits`.
    b1: Vec<i64>,
    /// Output-layer weights over the ±1 activations, scaled by `2^bits`.
    w2: Vec<i64>,
    /// Output bias, scaled by `2^bits`.
    b2: i64,
    bits: u32,
}

impl QuantizedMlp {
    /// Derives the quantized model from a trained float MLP by rounding
    /// every layer's weights directly. The sign activation then stands in
    /// for the float ReLU with no magnitude correction, which can drift
    /// far from the parent model — prefer
    /// [`from_mlp_calibrated`](Self::from_mlp_calibrated) when the
    /// training inputs are at hand.
    pub fn from_mlp(mlp: &Mlp, bits: u32) -> QuantizedMlp {
        QuantizedMlp {
            w1: mlp
                .w1
                .iter()
                .map(|row| row.iter().map(|&w| fixed_point(w, bits)).collect())
                .collect(),
            b1: mlp.b1.iter().map(|&b| fixed_point(b, bits)).collect(),
            w2: mlp.w2.iter().map(|&w| fixed_point(w, bits)).collect(),
            b2: fixed_point(mlp.b2, bits),
            bits,
        }
    }

    /// Derives the quantized model with activation-range calibration.
    ///
    /// Each float unit's `relu(zⱼ)` is replaced by its least-squares
    /// one-bit quantizer over `features` (typically the training inputs):
    /// a step threshold `θⱼ` in pre-activation space together with a low
    /// and a high output level, found by an exact scan over the sorted
    /// calibration pre-activations (2-level Lloyd–Max). Writing the step
    /// as `(hi+lo)/2 + (hi−lo)/2 · sign(zⱼ − θⱼ)`, the threshold folds
    /// into the quantized hidden bias, the constant halves into the
    /// output bias and the sign halves into the output weights — the
    /// model keeps the exact ±1 sign-activation semantics of
    /// [`from_mlp`]; calibration only picks better integers. Units whose
    /// activation is constant over the calibration set get weight 0 and
    /// drop out of the score. Falls back to [`from_mlp`] on an empty
    /// calibration set.
    pub fn from_mlp_calibrated(mlp: &Mlp, bits: u32, features: &[Vec<u8>]) -> QuantizedMlp {
        if features.is_empty() {
            return QuantizedMlp::from_mlp(mlp, bits);
        }
        let hidden = mlp.w1.len();
        let mut theta = vec![0.0f64; hidden];
        let mut mid = vec![0.0f64; hidden];
        let mut halfspan = vec![0.0f64; hidden];
        for j in 0..hidden {
            let mut z: Vec<f64> = features
                .iter()
                .map(|x| {
                    mlp.w1[j]
                        .iter()
                        .zip(x)
                        .map(|(&w, &xi)| w * f64::from(xi))
                        .sum::<f64>()
                        + mlp.b1[j]
                })
                .collect();
            z.sort_by(|a, b| a.total_cmp(b));
            let (t, lo, hi) = step_fit(&z);
            theta[j] = t;
            mid[j] = (hi + lo) / 2.0;
            halfspan[j] = (hi - lo) / 2.0;
        }
        let signed: Vec<f64> = (0..hidden).map(|j| mlp.w2[j] * halfspan[j]).collect();
        let shift: f64 = (0..hidden).map(|j| mlp.w2[j] * mid[j]).sum();
        QuantizedMlp {
            w1: mlp
                .w1
                .iter()
                .map(|row| row.iter().map(|&w| fixed_point(w, bits)).collect())
                .collect(),
            b1: mlp
                .b1
                .iter()
                .zip(&theta)
                .map(|(&b, &t)| fixed_point(b - t, bits))
                .collect(),
            w2: signed.iter().map(|&w| fixed_point(w, bits)).collect(),
            b2: fixed_point(mlp.b2 + shift, bits),
            bits,
        }
    }

    /// Number of input features.
    pub fn num_features(&self) -> usize {
        self.w1.first().map_or(0, Vec::len)
    }

    /// Number of hidden units.
    pub fn hidden_units(&self) -> usize {
        self.w1.len()
    }

    /// Fractional bits retained by the quantization.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Integer weights of hidden unit `j` (one per feature).
    pub fn hidden_weights(&self, j: usize) -> &[i64] {
        &self.w1[j]
    }

    /// Integer bias of hidden unit `j`.
    pub fn hidden_bias(&self, j: usize) -> i64 {
        self.b1[j]
    }

    /// Integer output-layer weight of hidden unit `j`.
    pub fn output_weight(&self, j: usize) -> i64 {
        self.w2[j]
    }

    /// Integer output bias.
    pub fn output_bias(&self) -> i64 {
        self.b2
    }

    /// Whether hidden unit `j` fires (+1) on `features`:
    /// `Σ w1[j]·x + b1[j] ≥ 0`.
    pub fn unit_fires(&self, j: usize, features: &[u8]) -> bool {
        dot_i(&self.w1[j], features) + self.b1[j] >= 0
    }

    /// The integer output score `Σ w2[j]·hⱼ + b2` with `hⱼ = ±1`.
    pub fn score_quantized(&self, features: &[u8]) -> i64 {
        let mut score = self.b2;
        for j in 0..self.hidden_units() {
            let h = if self.unit_fires(j, features) { 1 } else { -1 };
            score += self.w2[j] * h;
        }
        score
    }

    /// The all-integer prediction the CNF encoding matches bit for bit.
    pub fn predict_quantized(&self, features: &[u8]) -> bool {
        self.score_quantized(features) >= 0
    }
}

impl Classifier for QuantizedMlp {
    fn predict(&self, features: &[u8]) -> bool {
        self.predict_quantized(features)
    }

    fn model_name(&self) -> &'static str {
        "MLP"
    }
}

/// A fixed-point linear SVM: `Σ qw·x + qb ≥ 0` in `i64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedSvm {
    weights: Vec<i64>,
    bias: i64,
    bits: u32,
}

impl QuantizedSvm {
    /// Derives the quantized model from a trained float SVM.
    pub fn from_svm(svm: &LinearSvm, bits: u32) -> QuantizedSvm {
        QuantizedSvm {
            weights: svm
                .weights
                .iter()
                .map(|&w| fixed_point(w, bits))
                .collect(),
            bias: fixed_point(svm.bias, bits),
            bits,
        }
    }

    /// Number of input features.
    pub fn num_features(&self) -> usize {
        self.weights.len()
    }

    /// Fractional bits retained by the quantization.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The integer weight vector.
    pub fn weights(&self) -> &[i64] {
        &self.weights
    }

    /// The integer bias.
    pub fn bias(&self) -> i64 {
        self.bias
    }

    /// The integer decision value `Σ qw·x + qb`.
    pub fn score_quantized(&self, features: &[u8]) -> i64 {
        dot_i(&self.weights, features) + self.bias
    }

    /// The all-integer prediction the CNF encoding matches bit for bit.
    pub fn predict_quantized(&self, features: &[u8]) -> bool {
        self.score_quantized(features) >= 0
    }
}

impl Classifier for QuantizedSvm {
    fn predict(&self, features: &[u8]) -> bool {
        self.predict_quantized(features)
    }

    fn model_name(&self) -> &'static str {
        "SVM"
    }
}

fn dot_i(w: &[i64], x: &[u8]) -> i64 {
    w.iter().zip(x).map(|(&wi, &xi)| wi * i64::from(xi)).sum()
}

/// Least-squares one-bit quantizer of `relu` over the sorted
/// pre-activations `z`: returns `(θ, lo, hi)` minimizing
/// `Σ (relu(zᵢ) − level(zᵢ))²` where `level(z)` is `lo` for `z < θ` and
/// `hi` for `z ≥ θ`. Exact scan over the n+1 split points using prefix
/// sums; splits between tied pre-activations are skipped because no
/// threshold can separate them.
fn step_fit(z: &[f64]) -> (f64, f64, f64) {
    let n = z.len();
    let v: Vec<f64> = z.iter().map(|&zi| zi.max(0.0)).collect();
    let mut prefix = vec![0.0f64; n + 1];
    let mut prefix_sq = vec![0.0f64; n + 1];
    for i in 0..n {
        prefix[i + 1] = prefix[i] + v[i];
        prefix_sq[i + 1] = prefix_sq[i] + v[i] * v[i];
    }
    let cluster_sse = |from: usize, to: usize| -> f64 {
        let count = (to - from) as f64;
        if count == 0.0 {
            return 0.0;
        }
        let sum = prefix[to] - prefix[from];
        (prefix_sq[to] - prefix_sq[from]) - sum * sum / count
    };
    let mut best_k = 0;
    let mut best_sse = f64::INFINITY;
    for k in 0..=n {
        if k > 0 && k < n && z[k - 1] == z[k] {
            continue;
        }
        let sse = cluster_sse(0, k) + cluster_sse(k, n);
        if sse < best_sse {
            best_sse = sse;
            best_k = k;
        }
    }
    let k = best_k;
    let lo = if k == 0 { 0.0 } else { (prefix[k] - prefix[0]) / k as f64 };
    let hi = if k == n {
        0.0
    } else {
        (prefix[n] - prefix[k]) / (n - k) as f64
    };
    let theta = if k == 0 {
        z[0] - 1.0
    } else if k == n {
        z[n - 1] + 1.0
    } else {
        (z[k - 1] + z[k]) / 2.0
    };
    (theta, lo, hi)
}

/// How often a quantized model and its float parent agree on a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgreementReport {
    /// Rows compared.
    pub total: usize,
    /// Rows on which both models predicted the same label.
    pub matching: usize,
}

impl AgreementReport {
    /// The agreement rate in `[0, 1]` (1.0 on an empty dataset: no
    /// disagreement was observed).
    pub fn agreement(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.matching as f64 / self.total as f64
        }
    }
}

/// Compares two classifiers row by row — typically a quantized model
/// against the float model it was derived from.
pub fn agreement_report(
    quantized: &dyn Classifier,
    float: &dyn Classifier,
    dataset: &Dataset,
) -> AgreementReport {
    let matching = dataset
        .iter()
        .filter(|(x, _)| quantized.predict(x) == float.predict(x))
        .count();
    AgreementReport {
        total: dataset.len(),
        matching,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::MlpConfig;
    use crate::svm::SvmConfig;

    fn dataset_from_fn(f: impl Fn(&[u8]) -> bool) -> Dataset {
        let mut d = Dataset::new(5);
        for bits in 0u8..32 {
            let row: Vec<u8> = (0..5).map(|k| (bits >> k) & 1).collect();
            let label = f(&row);
            d.push(row, label);
        }
        d
    }

    #[test]
    fn fixed_point_rounds_and_saturates() {
        assert_eq!(fixed_point(1.0, 8), 256);
        assert_eq!(fixed_point(-0.5, 8), -128);
        assert_eq!(fixed_point(0.001953125, 8), 1); // 0.5 ulp rounds away from zero
        assert_eq!(fixed_point(1e12, 8), i64::from(i32::MAX));
        assert_eq!(fixed_point(-1e12, 8), i64::from(i32::MIN));
    }

    #[test]
    fn quantized_svm_is_pure_integer_threshold() {
        let d = dataset_from_fn(|x| x[0] == 1);
        let svm = LinearSvm::fit(&d, SvmConfig::default());
        let q = QuantizedSvm::from_svm(&svm, DEFAULT_QUANT_BITS);
        assert_eq!(q.num_features(), 5);
        for (x, _) in d.iter() {
            let brute: i64 = x
                .iter()
                .enumerate()
                .map(|(i, &xi)| q.weights()[i] * i64::from(xi))
                .sum::<i64>()
                + q.bias();
            assert_eq!(q.predict_quantized(x), brute >= 0);
            assert_eq!(q.predict(x), q.predict_quantized(x));
        }
    }

    #[test]
    fn quantized_svm_preserves_a_clear_margin() {
        let d = dataset_from_fn(|x| x[0] == 1);
        let svm = LinearSvm::fit(&d, SvmConfig::default());
        let q = QuantizedSvm::from_svm(&svm, DEFAULT_QUANT_BITS);
        let report = agreement_report(&q, &svm, &d);
        assert_eq!(report.total, 32);
        assert_eq!(report.matching, 32, "8 fractional bits must preserve a 1.0-margin separator");
        assert_eq!(report.agreement(), 1.0);
    }

    #[test]
    fn quantized_mlp_uses_sign_activations() {
        // Hand-built float MLP: two hidden units, exact binary weights so
        // quantization is lossless and the semantics are checkable by hand.
        let mlp = Mlp {
            w1: vec![vec![1.0, -1.0], vec![-2.0, 0.0]],
            b1: vec![-0.5, 1.0],
            w2: vec![1.0, -1.0],
            b2: 0.25,
            config: MlpConfig::default(),
        };
        let q = QuantizedMlp::from_mlp(&mlp, 2);
        assert_eq!(q.hidden_units(), 2);
        assert_eq!(q.num_features(), 2);
        assert_eq!(q.hidden_weights(0), &[4, -4]);
        assert_eq!(q.hidden_bias(0), -2);
        assert_eq!(q.output_weight(1), -4);
        assert_eq!(q.output_bias(), 1);
        for bits in 0u8..4 {
            let x = [bits & 1, (bits >> 1) & 1];
            // Unit 0: 4·x0 − 4·x1 − 2 ≥ 0 ⇔ x0 ∧ ¬x1.
            assert_eq!(q.unit_fires(0, &x), x[0] == 1 && x[1] == 0);
            // Unit 1: −8·x0 + 4 ≥ 0 ⇔ ¬x0.
            assert_eq!(q.unit_fires(1, &x), x[0] == 0);
            let h0: i64 = if q.unit_fires(0, &x) { 1 } else { -1 };
            let h1: i64 = if q.unit_fires(1, &x) { 1 } else { -1 };
            let score = 4 * h0 - 4 * h1 + 1;
            assert_eq!(q.score_quantized(&x), score);
            assert_eq!(q.predict_quantized(&x), score >= 0);
        }
    }

    #[test]
    fn calibration_tracks_the_float_model() {
        // A linearly separable target the float MLP learns essentially
        // perfectly; the calibrated quantization must stay close to the
        // float predictions, where the uncalibrated sign swap may not.
        let d = dataset_from_fn(|x| u32::from(x[0]) + u32::from(x[2]) + u32::from(x[4]) >= 2);
        let mlp = Mlp::fit(
            &d,
            MlpConfig {
                hidden_units: 4,
                epochs: 60,
                ..MlpConfig::default()
            },
        );
        let calibrated = QuantizedMlp::from_mlp_calibrated(&mlp, 8, d.features());
        let report = agreement_report(&calibrated, &mlp, &d);
        assert!(
            report.agreement() >= 0.9,
            "calibrated agreement {} on {} rows",
            report.agreement(),
            report.total
        );
        // Empty calibration set degrades to the plain quantizer.
        assert_eq!(
            QuantizedMlp::from_mlp_calibrated(&mlp, 8, &[]),
            QuantizedMlp::from_mlp(&mlp, 8)
        );
    }

    #[test]
    fn quantization_is_deterministic() {
        let d = dataset_from_fn(|x| x[1] == 1 || x[3] == 1);
        let mlp = Mlp::fit(
            &d,
            MlpConfig {
                hidden_units: 4,
                epochs: 20,
                ..MlpConfig::default()
            },
        );
        let a = QuantizedMlp::from_mlp(&mlp, 8);
        let b = QuantizedMlp::from_mlp(&mlp, 8);
        assert_eq!(a, b);
        assert_eq!(a.model_name(), "MLP");
        let svm = LinearSvm::fit(&d, SvmConfig::default());
        assert_eq!(
            QuantizedSvm::from_svm(&svm, 6),
            QuantizedSvm::from_svm(&svm, 6)
        );
    }

    #[test]
    fn agreement_report_counts_disagreements() {
        struct Const(bool);
        impl Classifier for Const {
            fn predict(&self, _features: &[u8]) -> bool {
                self.0
            }
            fn model_name(&self) -> &'static str {
                "CONST"
            }
        }
        let d = dataset_from_fn(|x| x[0] == 1);
        let report = agreement_report(&Const(true), &Const(true), &d);
        assert_eq!(report.matching, 32);
        let report = agreement_report(&Const(true), &Const(false), &d);
        assert_eq!(report.matching, 0);
        assert_eq!(report.agreement(), 0.0);
        let empty = AgreementReport {
            total: 0,
            matching: 0,
        };
        assert_eq!(empty.agreement(), 1.0);
    }
}
