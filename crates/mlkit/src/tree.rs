//! CART decision trees over binary features.
//!
//! This is the central model family of the MCML study: decision trees are
//! the models whose whole-space behaviour the counting metrics quantify. The
//! implementation is a standard CART learner (Gini impurity, greedy splits)
//! specialized to 0/1 features, so every internal node tests a single feature
//! and each root-to-leaf path is a conjunction of literals — exactly the
//! structure the `Tree2CNF` translation in the `mcml` crate relies on.

use crate::data::Dataset;
use crate::Classifier;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// Hyper-parameters of a [`DecisionTree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth (`None` = unlimited).
    pub max_depth: Option<usize>,
    /// Minimum number of samples required to split a node further.
    pub min_samples_split: usize,
    /// Minimum Gini impurity decrease required to accept a split. The
    /// default of 0.0 lets the tree keep splitting on zero-gain features
    /// (like Scikit-Learn's default CART), which is required to fit
    /// parity-like concepts.
    pub min_impurity_decrease: f64,
    /// If set, each split considers only a random subset of this many
    /// features (used by random forests).
    pub max_features: Option<usize>,
    /// Seed for the feature subsampling RNG.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: None,
            min_samples_split: 2,
            min_impurity_decrease: 0.0,
            max_features: None,
            seed: 0,
        }
    }
}

impl TreeConfig {
    /// A configuration with a maximum depth.
    pub fn with_max_depth(depth: usize) -> Self {
        TreeConfig {
            max_depth: Some(depth),
            ..TreeConfig::default()
        }
    }
}

/// A node of the tree, stored in an arena.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    /// A leaf predicting a label.
    Leaf { label: bool },
    /// An internal node testing one feature: `left` is followed when the
    /// feature is 0, `right` when it is 1.
    Split {
        feature: usize,
        left: usize,
        right: usize,
    },
}

/// A root-to-leaf path: the conjunction of feature tests along the way and
/// the label predicted at the leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreePath {
    /// `(feature, value)` pairs: the path requires `features[feature] == value`.
    pub conditions: Vec<(usize, bool)>,
    /// The label predicted by the leaf this path reaches.
    pub label: bool,
}

/// A trained CART decision tree over binary features.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    root: usize,
    num_features: usize,
    config: TreeConfig,
}

impl DecisionTree {
    /// Trains a tree on a dataset with uniform sample weights.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn fit(dataset: &Dataset, config: TreeConfig) -> Self {
        let weights = vec![1.0; dataset.len()];
        DecisionTree::fit_weighted(dataset, &weights, config)
    }

    /// Trains a tree with per-sample weights (used by AdaBoost).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or the weight vector has the wrong
    /// length.
    pub fn fit_weighted(dataset: &Dataset, weights: &[f64], config: TreeConfig) -> Self {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        assert_eq!(
            weights.len(),
            dataset.len(),
            "one weight per sample required"
        );
        let mut builder = TreeBuilder {
            dataset,
            weights,
            config,
            nodes: Vec::new(),
            rng: ChaCha8Rng::seed_from_u64(config.seed),
        };
        let all: Vec<usize> = (0..dataset.len()).collect();
        let root = builder.build(&all, 0);
        DecisionTree {
            nodes: builder.nodes,
            root,
            num_features: dataset.num_features(),
            config,
        }
    }

    /// Number of features the tree was trained on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// The tree's hyper-parameters.
    pub fn config(&self) -> &TreeConfig {
        &self.config
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Depth of the tree (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        depth_of(&self.nodes, self.root)
    }

    /// Every root-to-leaf path of the tree.
    ///
    /// Any input follows exactly one path; the disjunction of the true-paths
    /// is the tree's positive-decision region. This is the interface consumed
    /// by the MCML `Tree2CNF` translation.
    pub fn paths(&self) -> Vec<TreePath> {
        let mut out = Vec::new();
        let mut stack: Vec<(usize, Vec<(usize, bool)>)> = vec![(self.root, Vec::new())];
        while let Some((node, conditions)) = stack.pop() {
            match &self.nodes[node] {
                Node::Leaf { label } => out.push(TreePath {
                    conditions,
                    label: *label,
                }),
                Node::Split {
                    feature,
                    left,
                    right,
                } => {
                    let mut left_conditions = conditions.clone();
                    left_conditions.push((*feature, false));
                    let mut right_conditions = conditions;
                    right_conditions.push((*feature, true));
                    stack.push((*left, left_conditions));
                    stack.push((*right, right_conditions));
                }
            }
        }
        out
    }
}

impl Classifier for DecisionTree {
    fn predict(&self, features: &[u8]) -> bool {
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Leaf { label } => return *label,
                Node::Split {
                    feature,
                    left,
                    right,
                } => {
                    node = if features[*feature] != 0 {
                        *right
                    } else {
                        *left
                    };
                }
            }
        }
    }

    fn model_name(&self) -> &'static str {
        "DT"
    }
}

impl fmt::Display for DecisionTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DecisionTree(leaves={}, depth={})",
            self.num_leaves(),
            self.depth()
        )
    }
}

struct TreeBuilder<'a> {
    dataset: &'a Dataset,
    weights: &'a [f64],
    config: TreeConfig,
    nodes: Vec<Node>,
    rng: ChaCha8Rng,
}

impl TreeBuilder<'_> {
    fn build(&mut self, indices: &[usize], depth: usize) -> usize {
        let (pos_weight, total_weight) = self.class_weights(indices);
        let majority = pos_weight * 2.0 >= total_weight;

        let pure = pos_weight <= f64::EPSILON || (total_weight - pos_weight) <= f64::EPSILON;
        let depth_reached = self.config.max_depth.is_some_and(|d| depth >= d);
        if pure || depth_reached || indices.len() < self.config.min_samples_split {
            return self.leaf(majority);
        }

        match self.best_split(indices, pos_weight, total_weight) {
            None => self.leaf(majority),
            Some((feature, _gain)) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| self.dataset.get(i).0[feature] == 0);
                if left_idx.is_empty() || right_idx.is_empty() {
                    return self.leaf(majority);
                }
                let left = self.build(&left_idx, depth + 1);
                let right = self.build(&right_idx, depth + 1);
                self.nodes.push(Node::Split {
                    feature,
                    left,
                    right,
                });
                self.nodes.len() - 1
            }
        }
    }

    fn leaf(&mut self, label: bool) -> usize {
        self.nodes.push(Node::Leaf { label });
        self.nodes.len() - 1
    }

    fn class_weights(&self, indices: &[usize]) -> (f64, f64) {
        let mut pos = 0.0;
        let mut total = 0.0;
        for &i in indices {
            let w = self.weights[i];
            total += w;
            if self.dataset.get(i).1 {
                pos += w;
            }
        }
        (pos, total)
    }

    /// Finds the feature whose 0/1 split maximizes the Gini impurity
    /// decrease. Returns `None` if no split improves on the parent by at
    /// least `min_impurity_decrease`.
    fn best_split(
        &mut self,
        indices: &[usize],
        pos_weight: f64,
        total_weight: f64,
    ) -> Option<(usize, f64)> {
        let parent_gini = gini(pos_weight, total_weight);
        let num_features = self.dataset.num_features();
        let candidate_features: Vec<usize> = match self.config.max_features {
            None => (0..num_features).collect(),
            Some(k) => {
                let mut all: Vec<usize> = (0..num_features).collect();
                all.shuffle(&mut self.rng);
                all.truncate(k.max(1));
                all
            }
        };

        let mut best: Option<(usize, f64)> = None;
        for &f in &candidate_features {
            let mut right_pos = 0.0;
            let mut right_total = 0.0;
            for &i in indices {
                if self.dataset.get(i).0[f] != 0 {
                    right_total += self.weights[i];
                    if self.dataset.get(i).1 {
                        right_pos += self.weights[i];
                    }
                }
            }
            let left_total = total_weight - right_total;
            let left_pos = pos_weight - right_pos;
            if left_total <= 0.0 || right_total <= 0.0 {
                continue;
            }
            let weighted_child_gini = (left_total * gini(left_pos, left_total)
                + right_total * gini(right_pos, right_total))
                / total_weight;
            let gain = parent_gini - weighted_child_gini;
            if gain >= self.config.min_impurity_decrease - 1e-12
                && best.is_none_or(|(_, g)| gain > g)
            {
                best = Some((f, gain));
            }
        }
        best
    }
}

fn gini(pos: f64, total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let p = pos / total;
    2.0 * p * (1.0 - p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ConfusionMatrix;

    /// Dataset labeled by an arbitrary boolean function of 4 binary features.
    fn dataset_from_fn(f: impl Fn(&[u8]) -> bool) -> Dataset {
        let mut d = Dataset::new(4);
        for bits in 0u8..16 {
            let row: Vec<u8> = (0..4).map(|k| (bits >> k) & 1).collect();
            let label = f(&row);
            d.push(row, label);
        }
        d
    }

    #[test]
    fn learns_single_feature() {
        let d = dataset_from_fn(|x| x[2] == 1);
        let t = DecisionTree::fit(&d, TreeConfig::default());
        for (x, y) in d.iter() {
            assert_eq!(t.predict(x), y);
        }
        assert_eq!(t.num_leaves(), 2);
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn learns_conjunction_and_disjunction() {
        for f in [
            (|x: &[u8]| x[0] == 1 && x[3] == 1) as fn(&[u8]) -> bool,
            (|x: &[u8]| x[1] == 1 || x[2] == 1) as fn(&[u8]) -> bool,
        ] {
            let d = dataset_from_fn(f);
            let t = DecisionTree::fit(&d, TreeConfig::default());
            for (x, y) in d.iter() {
                assert_eq!(t.predict(x), y);
            }
        }
    }

    #[test]
    fn learns_xor_with_enough_depth() {
        let d = dataset_from_fn(|x| (x[0] ^ x[1]) == 1);
        let t = DecisionTree::fit(&d, TreeConfig::default());
        let preds: Vec<bool> = d.features().iter().map(|x| t.predict(x)).collect();
        let m = ConfusionMatrix::from_predictions(d.labels(), &preds);
        assert_eq!(m.metrics().accuracy, 1.0, "tree: {t}");
    }

    #[test]
    fn max_depth_limits_depth() {
        let d = dataset_from_fn(|x| (x[0] ^ x[1] ^ x[2]) == 1);
        let t = DecisionTree::fit(&d, TreeConfig::with_max_depth(1));
        assert!(t.depth() <= 1);
    }

    #[test]
    fn paths_cover_every_input_exactly_once() {
        let d = dataset_from_fn(|x| x[0] == 1 && (x[1] == 1 || x[3] == 0));
        let t = DecisionTree::fit(&d, TreeConfig::default());
        let paths = t.paths();
        assert_eq!(paths.len(), t.num_leaves());
        for (x, _) in d.iter() {
            let matching: Vec<&TreePath> = paths
                .iter()
                .filter(|p| p.conditions.iter().all(|&(f, v)| (x[f] != 0) == v))
                .collect();
            assert_eq!(
                matching.len(),
                1,
                "input {x:?} matches {} paths",
                matching.len()
            );
            assert_eq!(matching[0].label, t.predict(x));
        }
    }

    #[test]
    fn paths_conditions_are_consistent() {
        let d = dataset_from_fn(|x| (x[0] & x[1]) == 1 || (x[2] & x[3]) == 1);
        let t = DecisionTree::fit(&d, TreeConfig::default());
        for p in t.paths() {
            // No feature appears twice on a path (binary features are used up).
            let mut feats: Vec<usize> = p.conditions.iter().map(|&(f, _)| f).collect();
            feats.sort_unstable();
            feats.dedup();
            assert_eq!(feats.len(), p.conditions.len());
        }
    }

    #[test]
    fn weighted_fit_respects_weights() {
        // Two contradictory samples; the heavier one wins the leaf label.
        let mut d = Dataset::new(1);
        d.push(vec![1], true);
        d.push(vec![1], false);
        let t_pos = DecisionTree::fit_weighted(&d, &[10.0, 1.0], TreeConfig::default());
        assert!(t_pos.predict(&[1]));
        let t_neg = DecisionTree::fit_weighted(&d, &[1.0, 10.0], TreeConfig::default());
        assert!(!t_neg.predict(&[1]));
    }

    #[test]
    fn pure_dataset_yields_single_leaf() {
        let mut d = Dataset::new(2);
        d.push(vec![0, 1], true);
        d.push(vec![1, 0], true);
        let t = DecisionTree::fit(&d, TreeConfig::default());
        assert_eq!(t.num_leaves(), 1);
        assert!(t.predict(&[0, 0]));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let d = Dataset::new(2);
        DecisionTree::fit(&d, TreeConfig::default());
    }

    #[test]
    fn feature_subsetting_still_learns() {
        let d = dataset_from_fn(|x| x[1] == 1);
        let config = TreeConfig {
            max_features: Some(2),
            seed: 5,
            ..TreeConfig::default()
        };
        let t = DecisionTree::fit(&d, config);
        // With feature subsetting the tree may need several levels, but it
        // must still fit the training data exactly (it can always split on
        // the informative feature eventually).
        let correct = d.iter().filter(|(x, y)| t.predict(x) == *y).count();
        assert!(correct >= 14, "only {correct}/16 correct");
    }
}
