//! AdaBoost over shallow decision trees (the paper's `ABT` model).
//!
//! The discrete AdaBoost / SAMME algorithm: weak learners are depth-limited
//! CART trees trained on re-weighted samples; each learner gets a vote
//! proportional to `ln((1 - err) / err)`, and the ensemble predicts the sign
//! of the weighted vote sum.

use crate::data::Dataset;
use crate::tree::{DecisionTree, TreeConfig};
use crate::Classifier;

/// Hyper-parameters of an [`AdaBoost`] ensemble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaBoostConfig {
    /// Number of boosting rounds (weak learners).
    pub num_rounds: usize,
    /// Depth of each weak learner.
    pub weak_depth: usize,
    /// RNG seed forwarded to the weak learners.
    pub seed: u64,
}

impl Default for AdaBoostConfig {
    fn default() -> Self {
        AdaBoostConfig {
            num_rounds: 50,
            weak_depth: 1,
            seed: 0,
        }
    }
}

/// A trained AdaBoost ensemble.
#[derive(Debug, Clone)]
pub struct AdaBoost {
    learners: Vec<(f64, DecisionTree)>,
    config: AdaBoostConfig,
}

impl AdaBoost {
    /// Trains the ensemble.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `num_rounds` is 0.
    pub fn fit(dataset: &Dataset, config: AdaBoostConfig) -> Self {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        assert!(config.num_rounds > 0, "need at least one boosting round");
        let n = dataset.len();
        let mut weights = vec![1.0 / n as f64; n];
        let mut learners: Vec<(f64, DecisionTree)> = Vec::new();

        for round in 0..config.num_rounds {
            let tree_config = TreeConfig {
                max_depth: Some(config.weak_depth),
                seed: config.seed.wrapping_add(round as u64),
                ..TreeConfig::default()
            };
            let tree = DecisionTree::fit_weighted(dataset, &weights, tree_config);
            let mut err = 0.0;
            let predictions: Vec<bool> =
                dataset.features().iter().map(|x| tree.predict(x)).collect();
            for (i, (&w, &p)) in weights.iter().zip(&predictions).enumerate() {
                if p != dataset.labels()[i] {
                    err += w;
                }
            }
            // A perfect learner ends boosting; a useless one is skipped with
            // a small weight bump to avoid numeric blow-ups.
            if err <= 1e-12 {
                learners.push((10.0, tree));
                break;
            }
            if err >= 0.5 {
                break;
            }
            let alpha = 0.5 * ((1.0 - err) / err).ln();
            for (i, &p) in predictions.iter().enumerate() {
                let y = if dataset.labels()[i] { 1.0 } else { -1.0 };
                let h = if p { 1.0 } else { -1.0 };
                weights[i] *= (-alpha * y * h).exp();
            }
            let total: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= total;
            }
            learners.push((alpha, tree));
        }

        if learners.is_empty() {
            // Degenerate data (e.g. a single class): fall back to one stump.
            let tree = DecisionTree::fit(dataset, TreeConfig::with_max_depth(config.weak_depth));
            learners.push((1.0, tree));
        }

        AdaBoost { learners, config }
    }

    /// Number of weak learners actually trained.
    pub fn num_learners(&self) -> usize {
        self.learners.len()
    }

    /// The trained `(vote weight, weak learner)` pairs, in boosting order.
    ///
    /// The ensemble predicts positive iff the weighted vote
    /// `Σ αᵢ·hᵢ(x)` (summed in this order, `hᵢ ∈ {−1, +1}`) is ≥ 0 — the
    /// structure the MCML `CnfEncodable` threshold encoding consumes.
    pub fn learners(&self) -> &[(f64, DecisionTree)] {
        &self.learners
    }

    /// The ensemble's hyper-parameters.
    pub fn config(&self) -> &AdaBoostConfig {
        &self.config
    }
}

impl Classifier for AdaBoost {
    fn predict(&self, features: &[u8]) -> bool {
        let score: f64 = self
            .learners
            .iter()
            .map(|(alpha, tree)| {
                let h = if tree.predict(features) { 1.0 } else { -1.0 };
                alpha * h
            })
            .sum();
        score >= 0.0
    }

    fn model_name(&self) -> &'static str {
        "ABT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset_from_fn(f: impl Fn(&[u8]) -> bool) -> Dataset {
        let mut d = Dataset::new(5);
        for bits in 0u8..32 {
            let row: Vec<u8> = (0..5).map(|k| (bits >> k) & 1).collect();
            let label = f(&row);
            d.push(row, label);
        }
        d
    }

    #[test]
    fn learns_single_feature_with_one_stump() {
        let d = dataset_from_fn(|x| x[3] == 1);
        let a = AdaBoost::fit(&d, AdaBoostConfig::default());
        for (x, y) in d.iter() {
            assert_eq!(a.predict(x), y);
        }
    }

    #[test]
    fn boosting_beats_a_single_stump_on_majority() {
        let d = dataset_from_fn(|x| x.iter().map(|&b| b as usize).sum::<usize>() >= 3);
        let stump = DecisionTree::fit(&d, TreeConfig::with_max_depth(1));
        let boosted = AdaBoost::fit(
            &d,
            AdaBoostConfig {
                num_rounds: 100,
                ..AdaBoostConfig::default()
            },
        );
        let acc = |pred: &dyn Fn(&[u8]) -> bool| {
            d.iter().filter(|(x, y)| pred(x) == *y).count() as f64 / d.len() as f64
        };
        let stump_acc = acc(&|x| stump.predict(x));
        let boost_acc = acc(&|x| boosted.predict(x));
        assert!(
            boost_acc >= stump_acc,
            "boosted {boost_acc} worse than stump {stump_acc}"
        );
        assert!(boost_acc >= 0.9, "boosted accuracy {boost_acc}");
    }

    #[test]
    fn handles_single_class_dataset() {
        let mut d = Dataset::new(2);
        d.push(vec![0, 1], true);
        d.push(vec![1, 1], true);
        let a = AdaBoost::fit(&d, AdaBoostConfig::default());
        assert!(a.predict(&[0, 1]));
        assert!(a.num_learners() >= 1);
    }

    #[test]
    fn model_name() {
        let d = dataset_from_fn(|x| x[0] == 1);
        assert_eq!(
            AdaBoost::fit(&d, AdaBoostConfig::default()).model_name(),
            "ABT"
        );
    }
}
