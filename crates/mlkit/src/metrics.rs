//! Classification metrics: confusion matrices and the four standard scores
//! (accuracy, precision, recall, F1) used throughout the MCML study.
//!
//! The same scores are computed in two settings:
//!
//! * from *predictions on a dataset* (the traditional setting, via
//!   [`ConfusionMatrix::from_predictions`]);
//! * from *whole-space model counts* (the MCML setting, via
//!   [`BinaryMetrics::from_counts`], whose inputs are `u128` counts produced
//!   by the model counters).

use std::fmt;

/// Counts of true/false positives/negatives.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// True negatives.
    pub tn: u64,
    /// False negatives.
    pub fn_: u64,
}

impl ConfusionMatrix {
    /// Builds a confusion matrix from parallel slices of ground-truth labels
    /// and predictions.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_predictions(labels: &[bool], predictions: &[bool]) -> Self {
        assert_eq!(labels.len(), predictions.len(), "length mismatch");
        let mut m = ConfusionMatrix::default();
        for (&y, &p) in labels.iter().zip(predictions) {
            match (y, p) {
                (true, true) => m.tp += 1,
                (false, true) => m.fp += 1,
                (false, false) => m.tn += 1,
                (true, false) => m.fn_ += 1,
            }
        }
        m
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// The derived accuracy / precision / recall / F1 scores.
    pub fn metrics(&self) -> BinaryMetrics {
        BinaryMetrics::from_counts(
            u128::from(self.tp),
            u128::from(self.fp),
            u128::from(self.tn),
            u128::from(self.fn_),
        )
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tp={} fp={} tn={} fn={}",
            self.tp, self.fp, self.tn, self.fn_
        )
    }
}

/// The four standard binary-classification scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinaryMetrics {
    /// (TP + TN) / (TP + FP + TN + FN).
    pub accuracy: f64,
    /// TP / (TP + FP); 0 when the denominator is 0.
    pub precision: f64,
    /// TP / (TP + FN); 0 when the denominator is 0.
    pub recall: f64,
    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub f1: f64,
}

impl BinaryMetrics {
    /// Computes the scores from raw counts. Counts may be whole-space model
    /// counts (MCML) or dataset tallies (traditional evaluation).
    ///
    /// Divisions by zero follow the usual convention of scoring 0, matching
    /// the paper's reported 0.0000 precisions.
    pub fn from_counts(tp: u128, fp: u128, tn: u128, fn_: u128) -> Self {
        let tp_f = tp as f64;
        let fp_f = fp as f64;
        let tn_f = tn as f64;
        let fn_f = fn_ as f64;
        let total = tp_f + fp_f + tn_f + fn_f;
        let accuracy = if total > 0.0 {
            (tp_f + tn_f) / total
        } else {
            0.0
        };
        let precision = if tp_f + fp_f > 0.0 {
            tp_f / (tp_f + fp_f)
        } else {
            0.0
        };
        let recall = if tp_f + fn_f > 0.0 {
            tp_f / (tp_f + fn_f)
        } else {
            0.0
        };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        BinaryMetrics {
            accuracy,
            precision,
            recall,
            f1,
        }
    }
}

impl fmt::Display for BinaryMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "acc={:.4} prec={:.4} rec={:.4} f1={:.4}",
            self.accuracy, self.precision, self.recall, self.f1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_matrix_from_predictions() {
        let labels = [true, true, false, false, true];
        let preds = [true, false, true, false, true];
        let m = ConfusionMatrix::from_predictions(&labels, &preds);
        assert_eq!(m.tp, 2);
        assert_eq!(m.fn_, 1);
        assert_eq!(m.fp, 1);
        assert_eq!(m.tn, 1);
        assert_eq!(m.total(), 5);
    }

    #[test]
    fn perfect_predictions_score_one() {
        let labels = [true, false, true];
        let m = ConfusionMatrix::from_predictions(&labels, &labels);
        let s = m.metrics();
        assert_eq!(s.accuracy, 1.0);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn all_wrong_scores_zero() {
        let labels = [true, false];
        let preds = [false, true];
        let s = ConfusionMatrix::from_predictions(&labels, &preds).metrics();
        assert_eq!(s.accuracy, 0.0);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn zero_denominators_are_zero_not_nan() {
        // Never predicts positive: precision denominator is 0.
        let s = BinaryMetrics::from_counts(0, 0, 10, 5);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1, 0.0);
        assert!((s.accuracy - 10.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn known_values() {
        let s = BinaryMetrics::from_counts(8, 2, 85, 5);
        assert!((s.accuracy - 0.93).abs() < 1e-12);
        assert!((s.precision - 0.8).abs() < 1e-12);
        assert!((s.recall - 8.0 / 13.0).abs() < 1e-12);
        let expected_f1 = 2.0 * 0.8 * (8.0 / 13.0) / (0.8 + 8.0 / 13.0);
        assert!((s.f1 - expected_f1).abs() < 1e-12);
    }

    #[test]
    fn handles_huge_model_counts() {
        // Counts on the order of 2^100 must not overflow or lose the ratio.
        let tp = 1u128 << 100;
        let fp = 1u128 << 100;
        let s = BinaryMetrics::from_counts(tp, fp, 0, 0);
        assert!((s.precision - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        ConfusionMatrix::from_predictions(&[true], &[true, false]);
    }
}
