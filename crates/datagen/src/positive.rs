//! Bounded-exhaustive enumeration of positive samples.
//!
//! As in the paper, the positive samples of a property at a scope are *all*
//! solutions enumerated by the SAT backend from the property's CNF
//! translation — optionally constrained by partial symmetry breaking. The
//! enumeration order is irrelevant to the study (the training subsets are
//! drawn at random later), so the solver's order is used as-is.

use relspec::instance::RelInstance;
use relspec::properties::Property;
use relspec::symmetry::SymmetryBreaking;
use relspec::translate::{translate_to_cnf, TranslateOptions};
use satkit::enumerate::{enumerate_projected, EnumerateConfig};

/// Result of a positive-sample enumeration.
#[derive(Debug, Clone)]
pub struct PositiveSamples {
    /// The enumerated instances, each satisfying the property (and the
    /// symmetry-breaking predicates if enabled).
    pub instances: Vec<RelInstance>,
    /// True when enumeration stopped at the cap, so more solutions exist.
    pub truncated: bool,
}

/// Enumerates up to `max_solutions` positive instances of `property` at
/// `scope`, under the given symmetry-breaking setting.
pub fn enumerate_positive(
    property: Property,
    scope: usize,
    symmetry: SymmetryBreaking,
    max_solutions: usize,
) -> PositiveSamples {
    let gt = translate_to_cnf(
        &property.spec(),
        TranslateOptions::new(scope).with_symmetry(symmetry),
    );
    let cnf = gt.cnf_positive();
    let enumeration = enumerate_projected(&cnf, &[], &EnumerateConfig { max_solutions });
    let instances = enumeration
        .solutions
        .iter()
        .map(|bits| RelInstance::from_bits(scope, bits.clone()))
        .collect();
    PositiveSamples {
        instances,
        truncated: enumeration.truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_enumerated_instances_satisfy_the_property() {
        for prop in [
            Property::Reflexive,
            Property::Function,
            Property::PartialOrder,
        ] {
            let samples = enumerate_positive(prop, 3, SymmetryBreaking::None, usize::MAX);
            assert!(!samples.instances.is_empty());
            assert!(!samples.truncated);
            for inst in &samples.instances {
                assert!(prop.holds(inst), "{prop} violated by {inst}");
            }
        }
    }

    #[test]
    fn counts_match_closed_forms_without_symmetry_breaking() {
        let cases = [
            (Property::Reflexive, 64),
            (Property::Equivalence, 5),
            (Property::TotalOrder, 6),
            (Property::Function, 27),
        ];
        for (prop, expected) in cases {
            let samples = enumerate_positive(prop, 3, SymmetryBreaking::None, usize::MAX);
            assert_eq!(samples.instances.len(), expected, "{prop}");
        }
    }

    #[test]
    fn symmetry_breaking_reduces_the_count() {
        let without = enumerate_positive(
            Property::PartialOrder,
            3,
            SymmetryBreaking::None,
            usize::MAX,
        );
        let with = enumerate_positive(
            Property::PartialOrder,
            3,
            SymmetryBreaking::Transpositions,
            usize::MAX,
        );
        assert!(with.instances.len() < without.instances.len());
        // Every kept instance still satisfies the property and the
        // lex-leader constraints.
        for inst in &with.instances {
            assert!(Property::PartialOrder.holds(inst));
            assert!(SymmetryBreaking::Transpositions.keeps(inst));
        }
    }

    #[test]
    fn full_symmetry_breaking_on_equivalence_scope4_yields_figure2_count() {
        // Figure 2 of the paper: the 5 non-isomorphic equivalence relations
        // over 4 atoms (= the 5 partitions of a 4-element set).
        let samples =
            enumerate_positive(Property::Equivalence, 4, SymmetryBreaking::Full, usize::MAX);
        assert_eq!(samples.instances.len(), 5);
    }

    #[test]
    fn truncation_is_reported() {
        let samples = enumerate_positive(Property::Reflexive, 3, SymmetryBreaking::None, 10);
        assert_eq!(samples.instances.len(), 10);
        assert!(samples.truncated);
    }
}
