//! # datagen
//!
//! Dataset generation for the MCML study.
//!
//! Reproduces the paper's data pipeline: positive samples are produced by
//! *bounded-exhaustive enumeration* of a property's solutions via the SAT
//! backend (with or without symmetry breaking); negative samples are drawn
//! uniformly at random from the whole state space and checked against the
//! property with the relational evaluator (no constraint solving); the two
//! sets are balanced and split into train/test portions at the paper's
//! ratios.

pub mod builder;
pub mod negative;
pub mod positive;

pub use builder::{DatasetBuilder, DatasetConfig, PropertyDataset, SplitRatio};
