//! Random sampling of negative examples.
//!
//! Following the paper, negative samples are drawn uniformly at random from
//! the entire state space (all `2^(n²)` adjacency matrices) and checked
//! against the property with the relational *evaluator* only — no constraint
//! solving is involved. Samples that happen to satisfy the property are
//! rejected and redrawn.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use relspec::instance::RelInstance;
use relspec::properties::Property;
use std::collections::HashSet;

/// Samples `count` distinct negative instances of `property` at `scope`.
///
/// # Panics
///
/// Panics if the property is satisfied by every instance at this scope (no
/// negatives exist), which cannot happen for the 16 study properties at
/// scopes ≥ 2.
pub fn sample_negatives(
    property: Property,
    scope: usize,
    count: usize,
    seed: u64,
) -> Vec<RelInstance> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let bits = scope * scope;
    let mut seen: HashSet<Vec<bool>> = HashSet::with_capacity(count);
    let mut out = Vec::with_capacity(count);
    // At small scopes the negative space can be smaller than `count`; cap the
    // attempts so the sampler terminates and returns what exists.
    let max_attempts = count.saturating_mul(1000).max(100_000);
    let mut attempts = 0usize;
    while out.len() < count && attempts < max_attempts {
        attempts += 1;
        let candidate: Vec<bool> = (0..bits).map(|_| rng.gen_bool(0.5)).collect();
        if seen.contains(&candidate) {
            continue;
        }
        let inst = RelInstance::from_bits(scope, candidate.clone());
        if !property.holds(&inst) {
            seen.insert(candidate);
            out.push(inst);
        }
    }
    assert!(
        !out.is_empty(),
        "no negative instances found for {property} at scope {scope}"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negatives_violate_the_property() {
        for prop in [
            Property::Reflexive,
            Property::Transitive,
            Property::Function,
        ] {
            let negatives = sample_negatives(prop, 4, 200, 7);
            assert_eq!(negatives.len(), 200);
            for inst in &negatives {
                assert!(!prop.holds(inst));
            }
        }
    }

    #[test]
    fn negatives_are_distinct() {
        let negatives = sample_negatives(Property::PartialOrder, 4, 300, 11);
        let set: HashSet<Vec<bool>> = negatives.iter().map(|i| i.bits().to_vec()).collect();
        assert_eq!(set.len(), negatives.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = sample_negatives(Property::Connex, 4, 50, 3);
        let b = sample_negatives(Property::Connex, 4, 50, 3);
        assert_eq!(a, b);
        let c = sample_negatives(Property::Connex, 4, 50, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn small_negative_space_is_handled() {
        // At scope 2 the negative space of some properties is tiny; the
        // sampler must terminate and return only what exists.
        let negatives = sample_negatives(Property::Functional, 2, 1000, 5);
        assert!(!negatives.is_empty());
        assert!(negatives.len() <= 16);
    }
}
