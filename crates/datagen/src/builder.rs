//! Balanced property datasets: the end-to-end data pipeline of the study.
//!
//! For a property, scope and symmetry-breaking setting, the builder
//! enumerates (up to a cap) every positive solution, samples an equal number
//! of random negatives, interleaves them into a balanced, shuffled
//! [`Dataset`] of adjacency-matrix feature vectors, and offers the paper's
//! train/test splits.

use crate::negative::sample_negatives;
use crate::positive::enumerate_positive;
use mlkit::data::{Dataset, SplitSpec};
use relspec::properties::Property;
use relspec::symmetry::SymmetryBreaking;

/// Re-export of the train/test split specification under the name the paper
/// uses ("training:test ratio").
pub type SplitRatio = SplitSpec;

/// Configuration of a property dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DatasetConfig {
    /// The relational property being learned.
    pub property: Property,
    /// Number of atoms in the universe.
    pub scope: usize,
    /// Symmetry-breaking setting used when enumerating positive samples.
    pub symmetry: SymmetryBreaking,
    /// Cap on the number of positive samples enumerated.
    pub max_positive: usize,
    /// RNG seed (negative sampling and shuffling).
    pub seed: u64,
}

impl DatasetConfig {
    /// A configuration with the defaults used by the experiment harness:
    /// symmetry breaking on, at most 10 000 positive samples.
    pub fn new(property: Property, scope: usize) -> Self {
        DatasetConfig {
            property,
            scope,
            symmetry: SymmetryBreaking::Transpositions,
            max_positive: 10_000,
            seed: 0,
        }
    }

    /// Disables symmetry breaking.
    pub fn without_symmetry(mut self) -> Self {
        self.symmetry = SymmetryBreaking::None;
        self
    }

    /// Sets the positive-sample cap.
    pub fn with_max_positive(mut self, max_positive: usize) -> Self {
        self.max_positive = max_positive;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A balanced dataset for one property plus its provenance.
#[derive(Debug, Clone)]
pub struct PropertyDataset {
    /// The configuration that produced the dataset.
    pub config: DatasetConfig,
    /// The balanced, shuffled dataset (features are `scope²`-bit adjacency
    /// matrices, labels are 1 for positive).
    pub dataset: Dataset,
    /// Number of positive samples (equal to the number of negatives).
    pub num_positive: usize,
    /// Whether the positive enumeration was truncated at the cap.
    pub positives_truncated: bool,
}

impl PropertyDataset {
    /// Splits into train and test sets at the given ratio.
    pub fn split(&self, ratio: SplitRatio) -> (Dataset, Dataset) {
        self.dataset.split(ratio, self.config.seed ^ 0x5eed_5eed)
    }
}

/// Builds balanced property datasets.
#[derive(Debug, Clone, Copy, Default)]
pub struct DatasetBuilder;

impl DatasetBuilder {
    /// Creates a builder.
    pub fn new() -> Self {
        DatasetBuilder
    }

    /// Builds the balanced dataset described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if the property has no positive solution at the scope (none of
    /// the 16 study properties does at scopes ≥ 2).
    pub fn build(&self, config: DatasetConfig) -> PropertyDataset {
        let positives = enumerate_positive(
            config.property,
            config.scope,
            config.symmetry,
            config.max_positive,
        );
        assert!(
            !positives.instances.is_empty(),
            "property {} has no positive solution at scope {}",
            config.property,
            config.scope
        );
        let negatives = sample_negatives(
            config.property,
            config.scope,
            positives.instances.len(),
            config.seed,
        );
        // Balance exactly: if the negative space was too small, drop extra
        // positives so the classes stay even.
        let n = positives.instances.len().min(negatives.len());
        let mut dataset = Dataset::new(config.scope * config.scope);
        for inst in positives.instances.iter().take(n) {
            dataset.push(inst.to_features(), true);
        }
        for inst in negatives.iter().take(n) {
            dataset.push(inst.to_features(), false);
        }
        PropertyDataset {
            config,
            dataset: dataset.shuffled(config.seed.wrapping_add(1)),
            num_positive: n,
            positives_truncated: positives.truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relspec::instance::RelInstance;

    #[test]
    fn builds_balanced_dataset() {
        let config = DatasetConfig::new(Property::PartialOrder, 4)
            .without_symmetry()
            .with_max_positive(500);
        let pd = DatasetBuilder::new().build(config);
        let (pos, neg) = pd.dataset.class_counts();
        assert_eq!(pos, neg);
        assert_eq!(pos, pd.num_positive);
        assert_eq!(pd.dataset.num_features(), 16);
    }

    #[test]
    fn labels_are_correct() {
        let config = DatasetConfig::new(Property::Reflexive, 3).without_symmetry();
        let pd = DatasetBuilder::new().build(config);
        for (features, label) in pd.dataset.iter() {
            let inst = RelInstance::from_features(3, features);
            assert_eq!(Property::Reflexive.holds(&inst), label);
        }
    }

    #[test]
    fn symmetry_breaking_restricts_positives_only() {
        let with_sb = DatasetBuilder::new().build(DatasetConfig::new(Property::Equivalence, 4));
        for (features, label) in with_sb.dataset.iter() {
            let inst = RelInstance::from_features(4, features);
            if label {
                assert!(SymmetryBreaking::Transpositions.keeps(&inst));
            }
        }
        let without_sb = DatasetBuilder::new()
            .build(DatasetConfig::new(Property::Equivalence, 4).without_symmetry());
        assert!(without_sb.num_positive >= with_sb.num_positive);
    }

    #[test]
    fn max_positive_cap_is_respected() {
        let config = DatasetConfig::new(Property::Reflexive, 4)
            .without_symmetry()
            .with_max_positive(50);
        let pd = DatasetBuilder::new().build(config);
        assert_eq!(pd.num_positive, 50);
        assert!(pd.positives_truncated);
        assert_eq!(pd.dataset.len(), 100);
    }

    #[test]
    fn split_respects_ratio() {
        let config = DatasetConfig::new(Property::Function, 4).without_symmetry();
        let pd = DatasetBuilder::new().build(config);
        let (train, test) = pd.split(SplitRatio::new(25));
        assert_eq!(train.len() + test.len(), pd.dataset.len());
        let frac = train.len() as f64 / pd.dataset.len() as f64;
        assert!((frac - 0.25).abs() < 0.02, "train fraction {frac}");
    }

    #[test]
    fn deterministic_given_seed() {
        let config = DatasetConfig::new(Property::Connex, 3).with_seed(5);
        let a = DatasetBuilder::new().build(config);
        let b = DatasetBuilder::new().build(config);
        assert_eq!(a.dataset, b.dataset);
    }
}
