//! Criterion benchmarks for the ML substrate: dataset generation and model
//! training — the kernels behind Tables 2 and 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::builder::{DatasetBuilder, DatasetConfig, SplitRatio};
use mlkit::forest::{ForestConfig, RandomForest};
use mlkit::svm::{LinearSvm, SvmConfig};
use mlkit::tree::{DecisionTree, TreeConfig};
use relspec::properties::Property;
use std::hint::black_box;

fn bench_dataset_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataset_generation");
    group.sample_size(10);
    for property in [Property::PartialOrder, Property::Function] {
        group.bench_with_input(
            BenchmarkId::from_parameter(property.name()),
            &property,
            |b, &property| {
                b.iter(|| {
                    black_box(
                        DatasetBuilder::new()
                            .build(DatasetConfig::new(property, 4).with_max_positive(300)),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_model_training(c: &mut Criterion) {
    let dataset = DatasetBuilder::new()
        .build(DatasetConfig::new(Property::PartialOrder, 4).with_max_positive(500));
    let (train, _) = dataset.split(SplitRatio::new(75));

    let mut group = c.benchmark_group("model_training");
    group.sample_size(10);
    group.bench_function("decision_tree", |b| {
        b.iter(|| black_box(DecisionTree::fit(black_box(&train), TreeConfig::default())))
    });
    group.bench_function("random_forest_10", |b| {
        b.iter(|| {
            black_box(RandomForest::fit(
                black_box(&train),
                ForestConfig {
                    num_trees: 10,
                    ..ForestConfig::default()
                },
            ))
        })
    });
    group.bench_function("linear_svm", |b| {
        b.iter(|| {
            black_box(LinearSvm::fit(
                black_box(&train),
                SvmConfig {
                    epochs: 20,
                    ..SvmConfig::default()
                },
            ))
        })
    });
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(
    name = benches;
    config = fast_config();
    targets = bench_dataset_generation, bench_model_training);
criterion_main!(benches);
