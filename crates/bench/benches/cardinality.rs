//! Criterion benchmarks for the cardinality machinery behind the
//! random-forest CNF encoding: raw totalizer construction in `satkit::card`
//! and the full majority-vote encoding + projected count via `CnfEncodable`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::builder::{DatasetBuilder, DatasetConfig, SplitRatio};
use mcml::encode::CnfEncodable;
use mcml::tree2cnf::TreeLabel;
use mlkit::forest::{ForestConfig, RandomForest};
use modelcount::exact::ExactCounter;
use relspec::properties::Property;
use satkit::card::Totalizer;
use satkit::cnf::{Cnf, Var};
use std::hint::black_box;

fn bench_totalizer_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("totalizer_build");
    for n in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut cnf = Cnf::new(n);
                let lits: Vec<_> = (0..n as u32).map(|v| Var(v).pos()).collect();
                black_box(Totalizer::build(&mut cnf, &lits));
                black_box(cnf.num_clauses())
            })
        });
    }
    group.finish();
}

fn trained_forest(num_trees: usize) -> RandomForest {
    let dataset = DatasetBuilder::new().build(
        DatasetConfig::new(Property::Antisymmetric, 3)
            .without_symmetry()
            .with_max_positive(200),
    );
    let (train, _) = dataset.split(SplitRatio::new(75));
    RandomForest::fit(
        &train,
        ForestConfig {
            num_trees,
            max_depth: Some(4),
            seed: 1,
            ..ForestConfig::default()
        },
    )
}

fn bench_forest_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest_majority_encoding");
    group.sample_size(10);
    for num_trees in [5usize, 15, 31] {
        let forest = trained_forest(num_trees);
        group.bench_with_input(
            BenchmarkId::from_parameter(num_trees),
            &forest,
            |b, forest| b.iter(|| black_box(forest.label_cnf(TreeLabel::True))),
        );
    }
    group.finish();
}

fn bench_forest_encoded_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest_encoded_count");
    group.sample_size(10);
    for num_trees in [5usize, 15] {
        let forest = trained_forest(num_trees);
        let cnf = forest.label_cnf(TreeLabel::True);
        let counter = ExactCounter::new();
        group.bench_with_input(BenchmarkId::from_parameter(num_trees), &cnf, |b, cnf| {
            b.iter(|| black_box(counter.count(black_box(cnf))))
        });
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(
    name = benches;
    config = fast_config();
    targets =
    bench_totalizer_build,
    bench_forest_encoding,
    bench_forest_encoded_count
);
criterion_main!(benches);
