//! Criterion benchmarks for the DiffMC pairwise model comparison — the
//! kernel behind Table 8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::builder::{DatasetBuilder, DatasetConfig, SplitRatio};
use mcml::backend::CounterBackend;
use mcml::diffmc::DiffMc;
use mlkit::tree::{DecisionTree, TreeConfig};
use relspec::properties::Property;
use std::hint::black_box;

fn bench_diffmc(c: &mut Criterion) {
    let mut group = c.benchmark_group("diffmc_whole_space");
    group.sample_size(10);
    for property in [Property::Connex, Property::Transitive] {
        let scope = 4;
        let dataset = DatasetBuilder::new().build(
            DatasetConfig::new(property, scope)
                .without_symmetry()
                .with_max_positive(500),
        );
        let (train, _) = dataset.split(SplitRatio::new(25));
        let tree_a = DecisionTree::fit(&train, TreeConfig::default());
        let tree_b = DecisionTree::fit(&train, TreeConfig::with_max_depth(5));
        let backend = CounterBackend::exact();
        group.bench_with_input(
            BenchmarkId::from_parameter(property.name()),
            &(tree_a, tree_b),
            |b, (tree_a, tree_b)| {
                b.iter(|| {
                    black_box(DiffMc::new(&backend).compare(black_box(tree_a), black_box(tree_b)))
                })
            },
        );
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(
    name = benches;
    config = fast_config();
    targets = bench_diffmc);
criterion_main!(benches);
