//! Criterion benchmarks for the model counters (exact vs approximate) on
//! ground-truth property formulas — the kernels behind Table 1 and the
//! Section 3 ApproxMC/ProjMC anecdote — and for the classic vs compiled
//! AccMC engines on a multi-model batch (the Table 3/5 access pattern).

use criterion::{criterion_group, BenchmarkId, Criterion};
use mcml::accmc::{AccMc, CountingEngine};
use mcml::backend::CounterBackend;
use mcml::counter::CompiledCounter;
use mcml::encode::CnfEncodable;
use mlkit::adaboost::{AdaBoost, AdaBoostConfig};
use mlkit::data::Dataset;
use mlkit::forest::{ForestConfig, RandomForest};
use mlkit::gbdt::{GbdtConfig, GradientBoosting};
use mlkit::mlp::{Mlp, MlpConfig};
use mlkit::quant::{QuantizedMlp, QuantizedSvm, DEFAULT_QUANT_BITS};
use mlkit::svm::{LinearSvm, SvmConfig};
use mlkit::tree::{DecisionTree, TreeConfig};
use modelcount::approx::{ApproxConfig, ApproxCounter};
use modelcount::exact::ExactCounter;
use relspec::instance::RelInstance;
use relspec::properties::Property;
use relspec::symmetry::SymmetryBreaking;
use relspec::translate::{translate_to_cnf, TranslateOptions};
use std::hint::black_box;

fn bench_exact_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_count_property");
    group.sample_size(10);
    for property in [
        Property::Reflexive,
        Property::Antisymmetric,
        Property::Function,
    ] {
        for scope in [3usize, 4] {
            let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
            let cnf = gt.cnf_positive();
            let counter = ExactCounter::new();
            group.bench_with_input(BenchmarkId::new(property.name(), scope), &cnf, |b, cnf| {
                b.iter(|| black_box(counter.count(black_box(cnf))))
            });
        }
    }
    group.finish();
}

fn bench_approx_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx_count_property");
    group.sample_size(10);
    for property in [Property::Antisymmetric, Property::PartialOrder] {
        let scope = 4;
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
        let cnf = gt.cnf_positive();
        let counter = ApproxCounter::new(ApproxConfig::default());
        group.bench_with_input(BenchmarkId::new(property.name(), scope), &cnf, |b, cnf| {
            b.iter(|| black_box(counter.count(black_box(cnf))))
        });
    }
    group.finish();
}

fn bench_symmetry_breaking_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("translate_with_symmetry");
    group.sample_size(20);
    for scope in [4usize, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(scope), &scope, |b, &scope| {
            b.iter(|| {
                black_box(translate_to_cnf(
                    &Property::PartialOrder.spec(),
                    TranslateOptions::new(scope).with_symmetry(SymmetryBreaking::Transpositions),
                ))
            })
        });
    }
    group.finish();
}

/// Trains `count` distinct decision trees on different subsamples of the
/// full labeled space — stand-ins for the many models one (property, scope)
/// pair meets across table rows, seeds and families.
fn tree_batch(property: Property, scope: usize, count: usize) -> Vec<DecisionTree> {
    let mut full = Dataset::new(scope * scope);
    for bits in 0u64..(1 << (scope * scope)) {
        let inst = RelInstance::from_bits(
            scope,
            (0..scope * scope).map(|k| bits >> k & 1 == 1).collect(),
        );
        full.push(inst.to_features(), property.holds(&inst));
    }
    (0..count)
        .map(|seed| DecisionTree::fit(&full.subsample(80, seed as u64), TreeConfig::default()))
        .collect()
}

/// Classic vs compiled engine on a ≥8-model batch per property: the classic
/// engine re-searches four conjunctions per model, the compiled engine
/// compiles φ / ¬φ once and conditions them on every model's regions.
fn bench_accmc_engine_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("accmc_engine_batch8");
    group.sample_size(10);
    let scope = 3;
    for property in [Property::Antisymmetric, Property::Transitive] {
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
        let trees = tree_batch(property, scope, 8);
        group.bench_with_input(
            BenchmarkId::new(format!("classic/{}", property.name()), scope),
            &trees,
            |b, trees| {
                b.iter(|| {
                    let backend = CounterBackend::exact();
                    let accmc = AccMc::new(&backend);
                    for tree in trees {
                        black_box(accmc.evaluate(&gt, tree).unwrap().unwrap());
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("compiled/{}", property.name()), scope),
            &trees,
            |b, trees| {
                b.iter(|| {
                    // A fresh counter per iteration charges the compiled
                    // engine its full φ / ¬φ compilation cost.
                    let backend = CompiledCounter::new();
                    let accmc = AccMc::with_engine(&backend, CountingEngine::Compiled);
                    for tree in trees {
                        black_box(accmc.evaluate(&gt, tree).unwrap().unwrap());
                    }
                })
            },
        );
    }
    group.finish();
}

/// Trains an 8-model ensemble batch — four random forests and four boosted
/// ensembles on different subsamples — for one (property, scope) pair.
fn ensemble_batch(property: Property, scope: usize) -> Vec<Box<dyn CnfEncodable>> {
    let mut full = Dataset::new(scope * scope);
    for bits in 0u64..(1 << (scope * scope)) {
        let inst = RelInstance::from_bits(
            scope,
            (0..scope * scope).map(|k| bits >> k & 1 == 1).collect(),
        );
        full.push(inst.to_features(), property.holds(&inst));
    }
    let mut models: Vec<Box<dyn CnfEncodable>> = Vec::with_capacity(8);
    for seed in 0..4u64 {
        models.push(Box::new(RandomForest::fit(
            &full.subsample(80, seed),
            ForestConfig {
                num_trees: 5,
                seed,
                ..ForestConfig::default()
            },
        )));
        models.push(Box::new(AdaBoost::fit(
            &full.subsample(80, seed + 4),
            AdaBoostConfig {
                num_rounds: 5,
                weak_depth: 2,
                seed,
            },
        )));
    }
    models
}

/// Classic vs compiled engine on an 8-model *ensemble* batch (RFT + ABT):
/// the classic engine re-encodes every ensemble into four conjunction CNFs
/// and searches each, the compiled engine extracts vote-BDD region cubes
/// and conditions the φ / ¬φ circuits compiled once per property.
fn bench_accmc_ensemble_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("accmc_ensemble_batch8");
    group.sample_size(10);
    let scope = 3;
    for property in [Property::Antisymmetric, Property::Function] {
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
        let models = ensemble_batch(property, scope);
        group.bench_with_input(
            BenchmarkId::new(format!("classic/{}", property.name()), scope),
            &models,
            |b, models| {
                b.iter(|| {
                    let backend = CounterBackend::exact();
                    let accmc = AccMc::new(&backend);
                    for model in models {
                        black_box(accmc.evaluate(&gt, model.as_ref()).unwrap().unwrap());
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("compiled/{}", property.name()), scope),
            &models,
            |b, models| {
                b.iter(|| {
                    // A fresh counter per iteration charges the compiled
                    // engine its full φ / ¬φ compilation cost.
                    let backend = CompiledCounter::new();
                    let accmc = AccMc::with_engine(&backend, CountingEngine::Compiled);
                    for model in models {
                        black_box(accmc.evaluate(&gt, model.as_ref()).unwrap().unwrap());
                    }
                })
            },
        );
    }
    group.finish();
}

/// Trains an 8-model GBDT batch on different subsamples for one
/// (property, scope) pair. Six rounds of depth-2 trees keeps the staged
/// additive-score fold comfortably inside the default vote-node budget.
fn gbdt_batch(property: Property, scope: usize) -> Vec<GradientBoosting> {
    let mut full = Dataset::new(scope * scope);
    for bits in 0u64..(1 << (scope * scope)) {
        let inst = RelInstance::from_bits(
            scope,
            (0..scope * scope).map(|k| bits >> k & 1 == 1).collect(),
        );
        full.push(inst.to_features(), property.holds(&inst));
    }
    (0..8u64)
        .map(|seed| {
            GradientBoosting::fit(
                &full.subsample(80, seed),
                GbdtConfig {
                    num_rounds: 6,
                    max_depth: 2,
                    ..GbdtConfig::default()
                },
            )
        })
        .collect()
}

/// Classic vs compiled engine on an 8-model *GBDT* batch: the classic
/// engine compiles each ensemble's additive-score branching program into
/// four conjunction CNFs and searches them, the compiled engine folds the
/// per-tree leaf stages into a feature-space BDD (sifting on budget
/// pressure) and conditions the φ / ¬φ circuits compiled once per property.
fn bench_accmc_gbdt_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("accmc_gbdt_batch8");
    group.sample_size(10);
    let scope = 3;
    for property in [Property::Antisymmetric, Property::Function] {
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
        let models = gbdt_batch(property, scope);
        group.bench_with_input(
            BenchmarkId::new(format!("classic/{}", property.name()), scope),
            &models,
            |b, models| {
                b.iter(|| {
                    let backend = CounterBackend::exact();
                    let accmc = AccMc::new(&backend);
                    for model in models {
                        black_box(accmc.evaluate(&gt, model).unwrap().unwrap());
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("compiled/{}", property.name()), scope),
            &models,
            |b, models| {
                b.iter(|| {
                    // A fresh counter per iteration charges the compiled
                    // engine its full φ / ¬φ compilation cost.
                    let backend = CompiledCounter::new();
                    let accmc = AccMc::with_engine(&backend, CountingEngine::Compiled);
                    for model in models {
                        black_box(accmc.evaluate(&gt, model).unwrap().unwrap());
                    }
                })
            },
        );
    }
    group.finish();
}

/// Trains an 8-model quantized neural/margin batch — four calibrated
/// sign-activation MLPs and four integer-weight SVMs on different
/// subsamples — for one (property, scope) pair. These are the models the
/// MLP/SVM table rows evaluate: the float parents are discarded.
fn quant_batch(property: Property, scope: usize) -> Vec<Box<dyn CnfEncodable>> {
    let mut full = Dataset::new(scope * scope);
    for bits in 0u64..(1 << (scope * scope)) {
        let inst = RelInstance::from_bits(
            scope,
            (0..scope * scope).map(|k| bits >> k & 1 == 1).collect(),
        );
        full.push(inst.to_features(), property.holds(&inst));
    }
    let mut models: Vec<Box<dyn CnfEncodable>> = Vec::with_capacity(8);
    for seed in 0..4u64 {
        let train = full.subsample(80, seed);
        let mlp = Mlp::fit(
            &train,
            MlpConfig {
                hidden_units: 4,
                epochs: 30,
                seed,
                ..MlpConfig::default()
            },
        );
        models.push(Box::new(QuantizedMlp::from_mlp_calibrated(
            &mlp,
            DEFAULT_QUANT_BITS,
            train.features(),
        )));
        let svm = LinearSvm::fit(
            &full.subsample(80, seed + 4),
            SvmConfig {
                seed,
                ..SvmConfig::default()
            },
        );
        models.push(Box::new(QuantizedSvm::from_svm(&svm, DEFAULT_QUANT_BITS)));
    }
    models
}

/// Classic vs compiled engine on an 8-model quantized MLP + SVM batch:
/// the classic engine asserts the signed pseudo-Boolean thresholds into
/// four conjunction CNFs per model and searches them, the compiled engine
/// builds weighted-threshold BDDs (the MLP output stage through the
/// staged vote fold) and conditions the φ / ¬φ circuits compiled once per
/// property.
fn bench_accmc_mlp_svm_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("accmc_mlp_svm_batch8");
    group.sample_size(10);
    let scope = 3;
    for property in [Property::Antisymmetric, Property::Function] {
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
        let models = quant_batch(property, scope);
        group.bench_with_input(
            BenchmarkId::new(format!("classic/{}", property.name()), scope),
            &models,
            |b, models| {
                b.iter(|| {
                    let backend = CounterBackend::exact();
                    let accmc = AccMc::new(&backend);
                    for model in models {
                        black_box(accmc.evaluate(&gt, model.as_ref()).unwrap().unwrap());
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("compiled/{}", property.name()), scope),
            &models,
            |b, models| {
                b.iter(|| {
                    // A fresh counter per iteration charges the compiled
                    // engine its full φ / ¬φ compilation cost.
                    let backend = CompiledCounter::new();
                    let accmc = AccMc::with_engine(&backend, CountingEngine::Compiled);
                    for model in models {
                        black_box(accmc.evaluate(&gt, model.as_ref()).unwrap().unwrap());
                    }
                })
            },
        );
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(
    name = benches;
    config = fast_config();
    targets =
    bench_exact_counting,
    bench_approx_counting,
    bench_accmc_engine_batch,
    bench_accmc_ensemble_batch,
    bench_accmc_gbdt_batch,
    bench_accmc_mlp_svm_batch,
    bench_symmetry_breaking_translation
);

/// Escapes a string for embedding in a JSON document (labels are plain
/// ASCII, but correctness is cheap).
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Per-(property, scope) compile statistics of the φ / ¬φ circuits the
/// compiled benches exercise: decisions, conflicts, component-cache hit
/// rate and the cross-query shared-cache hit rate (¬φ reusing φ's
/// components), so a branching-heuristic or reuse regression is visible in
/// the perf trail even before it shows up as slower wall-clock.
fn compile_stats_json() -> String {
    let scope = 3;
    let mut entries = Vec::new();
    for property in [
        Property::Antisymmetric,
        Property::Transitive,
        Property::Function,
    ] {
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
        let backend = CompiledCounter::new();
        // Compile φ and ¬φ exactly like the compiled engine does.
        let _ = mcml::counter::ModelCounter::count(&backend, &gt.cnf_positive());
        let _ = mcml::counter::ModelCounter::count(&backend, &gt.cnf_negative());
        let stats = backend.compile_stats();
        entries.push(format!(
            "    \"{}/{}\": {{\"decisions\": {}, \"conflicts\": {}, \"cache_hits\": {}, \
             \"cache_lookups\": {}, \"cache_hit_rate\": {:.4}, \"sat_calls\": {}, \
             \"shared_hits\": {}, \"shared_lookups\": {}, \"shared_hit_rate\": {:.4}}}",
            json_escape(property.name()),
            scope,
            stats.decisions,
            stats.conflicts,
            stats.cache_hits,
            stats.cache_lookups,
            stats.cache_hit_rate(),
            stats.sat_calls,
            stats.shared_hits,
            stats.shared_lookups,
            stats.shared_hit_rate(),
        ));
    }
    entries.join(",\n")
}

/// Classic-over-compiled wall-clock ratios for every benchmark that ran in
/// both engine variants — the headline number the PR perf gates read.
fn speedups_json(records: &[criterion::BenchRecord]) -> String {
    let mut entries = Vec::new();
    for rec in records {
        let Some(idx) = rec.label.find("/compiled/") else {
            continue;
        };
        let classic_label = format!(
            "{}/classic/{}",
            &rec.label[..idx],
            &rec.label[idx + "/compiled/".len()..]
        );
        if let Some(classic) = records.iter().find(|r| r.label == classic_label) {
            if rec.mean_ns > 0 {
                entries.push(format!(
                    "    \"{}\": {:.2}",
                    json_escape(&rec.label),
                    classic.mean_ns as f64 / rec.mean_ns as f64
                ));
            }
        }
    }
    entries.join(",\n")
}

/// Writes the machine-readable bench report: per-bench mean/min/max
/// nanoseconds, compile stats of the φ / ¬φ circuits, and the
/// classic-vs-compiled speedup ratios.
fn write_json_report(path: &str) {
    let records = criterion::recorded_benches();
    let benches: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"mean_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
                 \"samples\": {}}}",
                json_escape(&r.label),
                r.mean_ns,
                r.min_ns,
                r.max_ns,
                r.samples
            )
        })
        .collect();
    let report = format!(
        "{{\n  \"schema\": 1,\n  \"mode\": \"{}\",\n  \"benches\": [\n{}\n  ],\n  \
         \"compile_stats\": {{\n{}\n  }},\n  \"speedups\": {{\n{}\n  }}\n}}\n",
        if criterion::smoke_mode() {
            "smoke"
        } else {
            "measure"
        },
        benches.join(",\n"),
        compile_stats_json(),
        speedups_json(&records),
    );
    std::fs::write(path, report).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("wrote {path}");
}

fn main() {
    benches();
    if let Some(path) = criterion::json_output_path("BENCH_counting.json") {
        write_json_report(&path);
    }
}
