//! Criterion benchmarks for the model counters (exact vs approximate) on
//! ground-truth property formulas — the kernels behind Table 1 and the
//! Section 3 ApproxMC/ProjMC anecdote.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use modelcount::approx::{ApproxConfig, ApproxCounter};
use modelcount::exact::ExactCounter;
use relspec::properties::Property;
use relspec::symmetry::SymmetryBreaking;
use relspec::translate::{translate_to_cnf, TranslateOptions};
use std::hint::black_box;

fn bench_exact_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_count_property");
    group.sample_size(10);
    for property in [
        Property::Reflexive,
        Property::Antisymmetric,
        Property::Function,
    ] {
        for scope in [3usize, 4] {
            let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
            let cnf = gt.cnf_positive();
            let counter = ExactCounter::new();
            group.bench_with_input(BenchmarkId::new(property.name(), scope), &cnf, |b, cnf| {
                b.iter(|| black_box(counter.count(black_box(cnf))))
            });
        }
    }
    group.finish();
}

fn bench_approx_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx_count_property");
    group.sample_size(10);
    for property in [Property::Antisymmetric, Property::PartialOrder] {
        let scope = 4;
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
        let cnf = gt.cnf_positive();
        let counter = ApproxCounter::new(ApproxConfig::default());
        group.bench_with_input(BenchmarkId::new(property.name(), scope), &cnf, |b, cnf| {
            b.iter(|| black_box(counter.count(black_box(cnf))))
        });
    }
    group.finish();
}

fn bench_symmetry_breaking_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("translate_with_symmetry");
    group.sample_size(20);
    for scope in [4usize, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(scope), &scope, |b, &scope| {
            b.iter(|| {
                black_box(translate_to_cnf(
                    &Property::PartialOrder.spec(),
                    TranslateOptions::new(scope).with_symmetry(SymmetryBreaking::Transpositions),
                ))
            })
        });
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(
    name = benches;
    config = fast_config();
    targets =
    bench_exact_counting,
    bench_approx_counting,
    bench_symmetry_breaking_translation
);
criterion_main!(benches);
