//! Criterion benchmarks for the AccMC whole-space evaluation — the kernel
//! behind Tables 3, 5, 6, 7 and 9.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::builder::{DatasetBuilder, DatasetConfig, SplitRatio};
use mcml::accmc::AccMc;
use mcml::backend::CounterBackend;
use mlkit::tree::{DecisionTree, TreeConfig};
use relspec::properties::Property;
use relspec::translate::{translate_to_cnf, TranslateOptions};
use std::hint::black_box;

fn bench_accmc(c: &mut Criterion) {
    let mut group = c.benchmark_group("accmc_whole_space");
    group.sample_size(10);
    for property in [
        Property::Reflexive,
        Property::Antisymmetric,
        Property::PartialOrder,
    ] {
        let scope = 4;
        let dataset = DatasetBuilder::new().build(
            DatasetConfig::new(property, scope)
                .without_symmetry()
                .with_max_positive(500),
        );
        let (train, _) = dataset.split(SplitRatio::new(10));
        let tree = DecisionTree::fit(&train, TreeConfig::default());
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
        let backend = CounterBackend::exact();
        group.bench_with_input(
            BenchmarkId::from_parameter(property.name()),
            &(gt, tree),
            |b, (gt, tree)| {
                b.iter(|| black_box(AccMc::new(&backend).evaluate(black_box(gt), black_box(tree))))
            },
        );
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(
    name = benches;
    config = fast_config();
    targets = bench_accmc);
criterion_main!(benches);
