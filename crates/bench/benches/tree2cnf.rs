//! Criterion benchmarks for the Tree2CNF translation and the property
//! translation pipeline (the encoding cost the paper's Section 4 analyzes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::builder::{DatasetBuilder, DatasetConfig, SplitRatio};
use mcml::tree2cnf::{tree_label_cnf, TreeLabel};
use mlkit::tree::{DecisionTree, TreeConfig};
use relspec::properties::Property;
use relspec::translate::{translate_to_cnf, TranslateOptions};
use std::hint::black_box;

fn bench_tree2cnf(c: &mut Criterion) {
    let dataset = DatasetBuilder::new().build(
        DatasetConfig::new(Property::PreOrder, 4)
            .without_symmetry()
            .with_max_positive(800),
    );
    let (train, _) = dataset.split(SplitRatio::new(75));
    let tree = DecisionTree::fit(&train, TreeConfig::default());

    let mut group = c.benchmark_group("tree2cnf");
    group.bench_with_input(
        BenchmarkId::new("true_region", tree.num_leaves()),
        &tree,
        |b, tree| b.iter(|| black_box(tree_label_cnf(black_box(tree), TreeLabel::True))),
    );
    group.bench_with_input(
        BenchmarkId::new("false_region", tree.num_leaves()),
        &tree,
        |b, tree| b.iter(|| black_box(tree_label_cnf(black_box(tree), TreeLabel::False))),
    );
    group.finish();
}

fn bench_property_translation(c: &mut Criterion) {
    let mut group = c.benchmark_group("property_to_cnf");
    for property in [
        Property::Transitive,
        Property::Equivalence,
        Property::TotalOrder,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(property.name()),
            &property,
            |b, &property| {
                b.iter(|| black_box(translate_to_cnf(&property.spec(), TranslateOptions::new(5))))
            },
        );
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(
    name = benches;
    config = fast_config();
    targets = bench_tree2cnf, bench_property_translation);
criterion_main!(benches);
