//! Golden-output snapshots for the table CLIs.
//!
//! `table3` and `table5` are run as real processes on a fixed seed at a
//! tiny scope, under both counting engines, and their stdout is compared
//! character-for-character against checked-in golden files — so the report
//! layout, the metric formatting, the `Count` guarantee column and the
//! engine banner can't silently drift. The wall-clock `Time[s]` cells are
//! masked (the only non-deterministic part of the output).
//!
//! To regenerate after an intentional format change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p mcml-bench --test golden_tables
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

/// The fixed arguments of every snapshot run: scope 2 keeps all sixteen
/// properties cheap enough that both engines finish in well under a
/// second, and all six model families exercise the generic rows —
/// including the quantized MLP/SVM pair, whose rows pin the calibrated
/// quantization end to end.
const SNAPSHOT_ARGS: &[&str] = &[
    "--scope",
    "2",
    "--max-positive",
    "40",
    "--seed",
    "3",
    "--models",
    "dt,rft,gbdt,abt,mlp,svm",
    "--threads",
    "1",
];

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Runs a table binary with the snapshot arguments and the given engine,
/// returning its normalized stdout.
fn run_table(bin: &str, engine: &str) -> String {
    let exe = match bin {
        "table3" => env!("CARGO_BIN_EXE_table3"),
        "table5" => env!("CARGO_BIN_EXE_table5"),
        other => panic!("no snapshot binary {other:?}"),
    };
    let output = Command::new(exe)
        .args(SNAPSHOT_ARGS)
        .args(["--engine", engine])
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    assert!(
        output.status.success(),
        "{bin} --engine {engine} exited with {}: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    normalize(&String::from_utf8(output.stdout).expect("table output is UTF-8"))
}

/// Masks the wall-clock `Time[s]` cell (the last column of every data row,
/// the only token that parses as a float at the end of a line) and strips
/// alignment-padding trailing spaces, leaving everything else — including
/// the engine banner and the cache-statistics footer — byte-exact.
fn normalize(raw: &str) -> String {
    let mut out = String::new();
    for line in raw.lines() {
        let line = line.trim_end();
        match line.rsplit_once("  ") {
            Some((head, tail)) if tail.trim().parse::<f64>().is_ok() => {
                out.push_str(head.trim_end());
                out.push_str("  #.#");
            }
            _ => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

/// Compares `actual` against the golden file, or rewrites it when
/// `UPDATE_GOLDEN` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_dir().join(format!("{name}.txt"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate it with \
             UPDATE_GOLDEN=1 cargo test -p mcml-bench --test golden_tables",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "{name} output drifted from {}; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1",
        path.display()
    );
}

#[test]
fn table3_classic_snapshot() {
    check_golden("table3.classic", &run_table("table3", "classic"));
}

#[test]
fn table3_compiled_snapshot() {
    check_golden("table3.compiled", &run_table("table3", "compiled"));
}

#[test]
fn table5_classic_snapshot() {
    check_golden("table5.classic", &run_table("table5", "classic"));
}

#[test]
fn table5_compiled_snapshot() {
    check_golden("table5.compiled", &run_table("table5", "compiled"));
}

/// The two engines must print identical *metrics* on the same seed — only
/// the engine banner (and the masked timing) may differ. This pins the
/// engine-conformance story at the CLI layer, on top of the API-level
/// agreement suite.
#[test]
fn engines_agree_in_cli_output() {
    for bin in ["table3", "table5"] {
        let strip_banner = |s: String| -> String {
            s.lines()
                .filter(|l| {
                    !l.starts_with("(counting engine:") && !l.starts_with("(counter cache:")
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        let classic = strip_banner(run_table(bin, "classic"));
        let compiled = strip_banner(run_table(bin, "compiled"));
        assert_eq!(classic, compiled, "{bin}: engines disagree at the CLI");
    }
}
