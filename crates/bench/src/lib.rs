//! # mcml-bench
//!
//! Shared helpers for the experiment harness that regenerates every table of
//! the MCML paper. The `src/bin/table*.rs` binaries print paper-style rows;
//! the Criterion benches in `benches/` time the underlying kernels.

pub mod accmc_table;
pub mod cli;
pub mod scopes;

pub use cli::HarnessArgs;
pub use scopes::{study_scope, study_scope_no_sb};
