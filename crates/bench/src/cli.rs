//! Minimal command-line argument handling shared by the table binaries.
//!
//! Every `table*` binary accepts the same small set of flags:
//!
//! * `--scope N` — override the per-property study scope;
//! * `--approx` — use the approximate counter instead of the exact one;
//! * `--max-positive N` — cap on enumerated positive samples;
//! * `--seed N` — RNG seed;
//! * `--property NAME` — restrict to a single property (tables 1, 3, 5–8);
//! * `--models dt,rft,gbdt,abt,mlp,svm` — model families for the
//!   whole-space tables (3, 5, 6, 7), exercising the generic
//!   `CnfEncodable` path (MLP and SVM rows evaluate the post-training
//!   quantized models);
//! * `--mlp-hidden N` — hidden units of the quantized MLP family
//!   (default 4; each unit is one threshold circuit plus one stage of
//!   the output fold, so large values inflate the vote diagrams);
//! * `--quant-bits N` — fractional bits of the MLP/SVM fixed-point
//!   quantization (default 8);
//! * `--threads N` — worker threads for the batch `Runner` (0 = one per
//!   core);
//! * `--engine classic|compiled` — whole-space counting strategy: fresh
//!   search per count, or d-DNNF compile-once/query-many;
//! * `--vote-nodes N` — node budget for the ensemble vote circuits (the
//!   compiled engine's region-extraction BDDs and the ABT CNF vote
//!   diagram); an ensemble exceeding it fails with a typed
//!   `VoteCircuitTooLarge` error instead of exhausting memory;
//! * `--budget N` — decision/node budget for the exact and compiled
//!   backends (default 20 000 000); a count exceeding it reports
//!   `BudgetExhausted` instead of hanging;
//! * `--fallback exact|approx[:eps,delta]` — what a blown budget does to a
//!   row: `exact` (the default) keeps today's "-" cells, `approx` climbs
//!   the degradation ladder (symmetry-broken exact retry, then per-region
//!   (ε, δ)-approximate counts) so the row completes `A`-labeled;
//! * `--stream` — print each table row the moment its cell finishes
//!   (completion order, costliest cells scheduled first) instead of
//!   holding the whole table until the batch ends; per-cell errors are
//!   reported inline and the run keeps going;
//! * `--cache-dir DIR` — persist the count cache to `DIR` and reload it on
//!   the next run (cross-process reuse);
//! * `--artifact-dir DIR` — with `--engine compiled`, persist the compiled
//!   circuits and decision-region covers (one `circuits.compiled.v2.bin`
//!   per directory, overwritten) and preload them on the next run — the
//!   warm store `mcml-serve` reads at startup. Repeatable: every named
//!   directory's artifact is preloaded; the build is saved to the first.
//!
//! A malformed or unknown argument makes [`HarnessArgs::from_env`] print
//! the error and [`USAGE`] on stderr and exit with status 1 — a usage
//! mistake is not a crash, so the binaries never panic over one.

use mcml::accmc::CountingEngine;
use mcml::backend::CounterBackend;
use mcml::fallback::FallbackPolicy;
use mcml::framework::ModelFamily;
use mlkit::quant::DEFAULT_QUANT_BITS;
use relspec::properties::Property;
use std::path::PathBuf;

/// Usage summary printed (with the offending error) when argument parsing
/// fails.
pub const USAGE: &str = "\
usage: table* [flags]
  --scope N                     override the per-property study scope
  --approx                      use the approximate counter
  --exact                       use the exact counter (default)
  --max-positive N              cap on enumerated positive samples
  --seed N                      RNG seed
  --property NAME               restrict to a single property
  --models dt,rft,gbdt,abt,mlp,svm
                                model families for the whole-space tables
  --mlp-hidden N                hidden units of the quantized MLP (default 4)
  --quant-bits N                fractional bits of the MLP/SVM fixed-point
                                quantization (default 8, max 24)
  --threads N                   worker threads for the batch runner (0 = cores)
  --engine classic|compiled     whole-space counting strategy
  --vote-nodes N                node budget for ensemble vote circuits
  --budget N                    decision/node budget for counting backends
  --fallback exact|approx[:eps,delta]
                                what a blown counting budget does to a row
  --stream                      print rows in completion order
  --cache-dir DIR               persist the count cache across runs
  --artifact-dir DIR            persist/preload compiled circuit artifacts";

/// Parsed harness arguments.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Scope override (`None` = per-property default).
    pub scope: Option<usize>,
    /// Use the approximate counter.
    pub approx: bool,
    /// Cap on enumerated positive samples.
    pub max_positive: usize,
    /// RNG seed.
    pub seed: u64,
    /// Restrict to one property.
    pub property: Option<Property>,
    /// Model families evaluated by the whole-space tables.
    pub models: Vec<ModelFamily>,
    /// Hidden units of the quantized MLP family.
    pub mlp_hidden: usize,
    /// Fractional bits of the MLP/SVM fixed-point quantization.
    pub quant_bits: u32,
    /// Worker threads for the batch runner (0 = one per core).
    pub threads: usize,
    /// Whole-space counting engine.
    pub engine: CountingEngine,
    /// Node budget for ensemble vote circuits (region-extraction BDDs).
    pub vote_nodes: usize,
    /// Decision/node budget for the exact and compiled counting backends.
    pub budget: u64,
    /// Degradation policy applied when a count exhausts the budget.
    pub fallback: FallbackPolicy,
    /// Stream table rows as their cells finish instead of waiting for the
    /// whole batch.
    pub stream: bool,
    /// Directory holding the persistent count cache (`None` = in-memory
    /// only).
    pub cache_dir: Option<PathBuf>,
    /// Directories holding circuit artifact stores (empty = no circuit
    /// persistence). Only meaningful with the compiled engine. All are
    /// preloaded; a fresh build is saved to the first.
    pub artifact_dirs: Vec<PathBuf>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scope: None,
            approx: false,
            max_positive: 2_000,
            seed: 0,
            property: None,
            models: vec![ModelFamily::Dt],
            mlp_hidden: 4,
            quant_bits: DEFAULT_QUANT_BITS,
            threads: 0,
            engine: CountingEngine::Classic,
            vote_nodes: mcml::encode::MAX_VOTE_NODES,
            budget: 20_000_000,
            fallback: FallbackPolicy::default(),
            stream: false,
            cache_dir: None,
            artifact_dirs: Vec::new(),
        }
    }
}

impl HarnessArgs {
    /// Parses arguments from an iterator of strings (excluding the program
    /// name). A malformed or unknown argument is a usage error returned as
    /// `Err`, not a panic; [`from_env`](Self::from_env) turns it into a
    /// [`USAGE`] message and exit status 1.
    pub fn try_parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        fn value<I: Iterator<Item = String>>(
            iter: &mut I,
            flag: &str,
            what: &str,
        ) -> Result<String, String> {
            iter.next().ok_or_else(|| format!("{flag} requires {what}"))
        }
        fn number<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
            v.parse().map_err(|_| format!("{flag} must be a number"))
        }
        let mut out = HarnessArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scope" => {
                    let v = value(&mut iter, "--scope", "a value")?;
                    out.scope = Some(number(&v, "--scope")?);
                }
                "--approx" => out.approx = true,
                "--exact" => out.approx = false,
                "--max-positive" => {
                    let v = value(&mut iter, "--max-positive", "a value")?;
                    out.max_positive = number(&v, "--max-positive")?;
                }
                "--seed" => {
                    let v = value(&mut iter, "--seed", "a value")?;
                    out.seed = number(&v, "--seed")?;
                }
                "--property" => {
                    let v = value(&mut iter, "--property", "a name")?;
                    out.property = Some(
                        Property::from_name(&v).ok_or_else(|| format!("unknown property {v:?}"))?,
                    );
                }
                "--models" => {
                    let v = value(&mut iter, "--models", "a comma-separated list")?;
                    out.models = v
                        .split(',')
                        .map(|name| {
                            ModelFamily::parse(name.trim()).ok_or_else(|| {
                                format!(
                                    "unknown model family {name:?} \
                                     (expected dt, rft, gbdt, abt, mlp or svm)"
                                )
                            })
                        })
                        .collect::<Result<_, _>>()?;
                    if out.models.is_empty() {
                        return Err("--models requires at least one family".to_string());
                    }
                }
                "--mlp-hidden" => {
                    let v = value(&mut iter, "--mlp-hidden", "a value")?;
                    out.mlp_hidden = number(&v, "--mlp-hidden")?;
                    if out.mlp_hidden == 0 {
                        return Err("--mlp-hidden must be positive".to_string());
                    }
                }
                "--quant-bits" => {
                    let v = value(&mut iter, "--quant-bits", "a value")?;
                    out.quant_bits = number(&v, "--quant-bits")?;
                    if out.quant_bits == 0 || out.quant_bits > 24 {
                        return Err("--quant-bits must be between 1 and 24".to_string());
                    }
                }
                "--threads" => {
                    let v = value(&mut iter, "--threads", "a value")?;
                    out.threads = number(&v, "--threads")?;
                }
                "--engine" => {
                    let v = value(&mut iter, "--engine", "a name")?;
                    out.engine = CountingEngine::parse(&v)
                        .ok_or_else(|| format!("unknown engine {v:?} (expected classic or compiled)"))?;
                }
                "--vote-nodes" => {
                    let v = value(&mut iter, "--vote-nodes", "a value")?;
                    out.vote_nodes = number(&v, "--vote-nodes")?;
                    if out.vote_nodes == 0 {
                        return Err("--vote-nodes must be positive".to_string());
                    }
                }
                "--budget" => {
                    let v = value(&mut iter, "--budget", "a value")?;
                    out.budget = number(&v, "--budget")?;
                    if out.budget == 0 {
                        return Err("--budget must be positive".to_string());
                    }
                }
                "--fallback" => {
                    let v = value(&mut iter, "--fallback", "a policy")?;
                    out.fallback = FallbackPolicy::parse(&v)?;
                }
                "--stream" => out.stream = true,
                "--cache-dir" => {
                    let v = value(&mut iter, "--cache-dir", "a path")?;
                    out.cache_dir = Some(PathBuf::from(v));
                }
                "--artifact-dir" => {
                    let v = value(&mut iter, "--artifact-dir", "a path")?;
                    out.artifact_dirs.push(PathBuf::from(v));
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        if out.approx && out.engine == CountingEngine::Compiled {
            return Err(
                "--approx is incompatible with --engine compiled (the d-DNNF engine is exact)"
                    .to_string(),
            );
        }
        Ok(out)
    }

    /// Parses the process arguments; a usage error prints the message and
    /// [`USAGE`] on stderr and exits with status 1.
    pub fn from_env() -> Self {
        match HarnessArgs::try_parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(message) => {
                eprintln!("error: {message}");
                eprintln!("{USAGE}");
                std::process::exit(1);
            }
        }
    }

    /// Warns on stderr when flags only honoured by the `Runner`-backed
    /// AccMC tables (3/5/6/7) were passed to a binary that ignores them,
    /// so an experimenter never mis-attributes a DT table to `--models`.
    pub fn warn_ignored_runner_flags(&self, binary: &str) {
        if self.models != vec![ModelFamily::Dt] {
            eprintln!("warning: {binary} ignores --models (only tables 3, 5, 6 and 7 use it)");
        }
        if self.threads != 0 {
            eprintln!("warning: {binary} ignores --threads (only tables 3, 5, 6 and 7 use it)");
        }
        if self.stream {
            eprintln!("warning: {binary} ignores --stream (only tables 3, 5, 6 and 7 use it)");
        }
    }

    /// The counting backend selected by the flags. The exact and compiled
    /// backends carry the `--budget` allowance (20M by default — generous
    /// enough that a pathological instance reports "-" instead of hanging,
    /// the analogue of the paper's 5 000 s timeout; small values are the
    /// degradation ladder's test bench).
    pub fn backend(&self) -> CounterBackend {
        if self.approx {
            CounterBackend::approx()
        } else if self.engine == CountingEngine::Compiled {
            CounterBackend::compiled_with_budget(self.budget)
        } else {
            CounterBackend::exact_with_budget(self.budget)
        }
    }

    /// The properties selected (all 16 unless `--property` was given).
    pub fn properties(&self) -> Vec<Property> {
        match self.property {
            Some(p) => vec![p],
            None => Property::all().to_vec(),
        }
    }

    /// The scope to use for a property.
    pub fn scope_for(&self, property: Property) -> usize {
        self.scope
            .unwrap_or_else(|| crate::scopes::study_scope(property))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> HarnessArgs {
        HarnessArgs::try_parse(args.iter().map(|s| s.to_string())).expect("well-formed flags")
    }

    fn parse_err(args: &[&str]) -> String {
        HarnessArgs::try_parse(args.iter().map(|s| s.to_string()))
            .expect_err("malformed flags must be a usage error")
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.scope, None);
        assert!(!a.approx);
        assert_eq!(a.properties().len(), 16);
        assert_eq!(a.models, vec![ModelFamily::Dt]);
        assert_eq!(a.threads, 0);
    }

    #[test]
    fn parses_flags() {
        let a = parse(&[
            "--scope",
            "5",
            "--approx",
            "--seed",
            "9",
            "--property",
            "reflexive",
        ]);
        assert_eq!(a.scope, Some(5));
        assert!(a.approx);
        assert_eq!(a.seed, 9);
        assert_eq!(a.properties(), vec![Property::Reflexive]);
        assert_eq!(a.scope_for(Property::Reflexive), 5);
        assert_eq!(a.backend().name(), "approx");
    }

    #[test]
    fn parses_model_families() {
        let a = parse(&["--models", "dt,rft,gbdt,abt,mlp,svm", "--threads", "2"]);
        assert_eq!(a.models, ModelFamily::all().to_vec());
        assert_eq!(a.threads, 2);
        let single = parse(&["--models", "RFT"]);
        assert_eq!(single.models, vec![ModelFamily::Rft]);
        let quantized = parse(&["--models", "mlp,svm"]);
        assert_eq!(
            quantized.models,
            vec![ModelFamily::Mlp, ModelFamily::Svm]
        );
    }

    #[test]
    fn parses_quantization_knobs() {
        let defaults = parse(&[]);
        assert_eq!(defaults.mlp_hidden, 4);
        assert_eq!(defaults.quant_bits, DEFAULT_QUANT_BITS);
        let a = parse(&["--mlp-hidden", "8", "--quant-bits", "6"]);
        assert_eq!(a.mlp_hidden, 8);
        assert_eq!(a.quant_bits, 6);
        assert_eq!(
            parse_err(&["--mlp-hidden", "0"]),
            "--mlp-hidden must be positive"
        );
        assert_eq!(
            parse_err(&["--quant-bits", "0"]),
            "--quant-bits must be between 1 and 24"
        );
        assert_eq!(
            parse_err(&["--quant-bits", "30"]),
            "--quant-bits must be between 1 and 24"
        );
    }

    #[test]
    fn parses_stream() {
        assert!(parse(&["--stream"]).stream);
        assert!(!parse(&[]).stream);
    }

    #[test]
    fn parses_budget_and_fallback() {
        let defaults = parse(&[]);
        assert_eq!(defaults.budget, 20_000_000);
        assert_eq!(defaults.fallback, FallbackPolicy::Fail);
        let a = parse(&["--budget", "1", "--fallback", "approx"]);
        assert_eq!(a.budget, 1);
        assert_eq!(a.fallback, FallbackPolicy::approx());
        let tuned = parse(&["--fallback", "approx:0.8,0.1"]);
        assert_eq!(
            tuned.fallback,
            FallbackPolicy::SymmetryThenApprox {
                epsilon: 0.8,
                delta: 0.1
            }
        );
        assert_eq!(
            parse(&["--fallback", "exact"]).fallback,
            FallbackPolicy::Fail
        );
        // The ladder is a budget response, not a backend: it composes with
        // the compiled engine (unlike --approx, which replaces the backend).
        let compiled = parse(&["--engine", "compiled", "--fallback", "approx"]);
        assert_eq!(compiled.backend().name(), "compiled");
    }

    #[test]
    fn unknown_fallback_is_a_usage_error() {
        assert!(parse_err(&["--fallback", "magic"]).contains("unknown fallback policy"));
    }

    #[test]
    fn zero_budget_is_a_usage_error() {
        assert_eq!(parse_err(&["--budget", "0"]), "--budget must be positive");
    }

    #[test]
    fn parses_vote_nodes() {
        let a = parse(&["--vote-nodes", "1024"]);
        assert_eq!(a.vote_nodes, 1024);
        assert_eq!(parse(&[]).vote_nodes, mcml::encode::MAX_VOTE_NODES);
    }

    #[test]
    fn zero_vote_nodes_is_a_usage_error() {
        assert_eq!(
            parse_err(&["--vote-nodes", "0"]),
            "--vote-nodes must be positive"
        );
    }

    #[test]
    fn parses_engine_and_cache_dir() {
        let a = parse(&["--engine", "compiled", "--cache-dir", "/tmp/mcml-cache"]);
        assert_eq!(a.engine, CountingEngine::Compiled);
        assert_eq!(a.backend().name(), "compiled");
        assert_eq!(
            a.cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/mcml-cache"))
        );
        let default = parse(&[]);
        assert_eq!(default.engine, CountingEngine::Classic);
        assert_eq!(default.cache_dir, None);
        assert_eq!(parse(&["--engine", "CLASSIC"]).backend().name(), "exact");
    }

    #[test]
    fn parses_artifact_dir() {
        // The flag is repeatable: every directory is preloaded, the build
        // is saved to the first.
        let a = parse(&[
            "--engine",
            "compiled",
            "--artifact-dir",
            "/tmp/mcml-artifacts",
            "--artifact-dir",
            "/tmp/mcml-artifacts-2",
        ]);
        assert_eq!(
            a.artifact_dirs,
            vec![
                std::path::PathBuf::from("/tmp/mcml-artifacts"),
                std::path::PathBuf::from("/tmp/mcml-artifacts-2"),
            ]
        );
        assert!(parse(&[]).artifact_dirs.is_empty());
    }

    #[test]
    fn unknown_engine_is_a_usage_error() {
        assert!(parse_err(&["--engine", "magic"]).contains("unknown engine"));
    }

    #[test]
    fn approx_with_compiled_engine_is_a_usage_error() {
        assert!(parse_err(&["--approx", "--engine", "compiled"]).contains("incompatible"));
    }

    #[test]
    fn unknown_flag_is_a_usage_error() {
        assert!(parse_err(&["--bogus"]).contains("unknown argument"));
    }

    #[test]
    fn unknown_property_is_a_usage_error() {
        assert!(parse_err(&["--property", "nope"]).contains("unknown property"));
    }

    #[test]
    fn unknown_model_family_is_a_usage_error() {
        assert!(parse_err(&["--models", "dt,xgb"]).contains("unknown model family"));
    }

    #[test]
    fn missing_values_are_usage_errors_not_panics() {
        assert_eq!(parse_err(&["--scope"]), "--scope requires a value");
        assert_eq!(parse_err(&["--scope", "many"]), "--scope must be a number");
        assert_eq!(parse_err(&["--property"]), "--property requires a name");
        assert_eq!(
            parse_err(&["--models"]),
            "--models requires a comma-separated list"
        );
        assert_eq!(parse_err(&["--fallback"]), "--fallback requires a policy");
        assert_eq!(parse_err(&["--cache-dir"]), "--cache-dir requires a path");
    }

    #[test]
    fn usage_covers_every_flag() {
        // Keep the printed usage in sync with the parser: every flag the
        // parser matches must appear in USAGE.
        for flag in [
            "--scope",
            "--approx",
            "--exact",
            "--max-positive",
            "--seed",
            "--property",
            "--models",
            "--mlp-hidden",
            "--quant-bits",
            "--threads",
            "--engine",
            "--vote-nodes",
            "--budget",
            "--fallback",
            "--stream",
            "--cache-dir",
            "--artifact-dir",
        ] {
            assert!(USAGE.contains(flag), "USAGE is missing {flag}");
        }
    }
}
