//! Minimal command-line argument handling shared by the table binaries.
//!
//! Every `table*` binary accepts the same small set of flags:
//!
//! * `--scope N` — override the per-property study scope;
//! * `--approx` — use the approximate counter instead of the exact one;
//! * `--max-positive N` — cap on enumerated positive samples;
//! * `--seed N` — RNG seed;
//! * `--property NAME` — restrict to a single property (tables 1, 3, 5–8);
//! * `--models dt,rft,abt,gbdt` — model families for the whole-space
//!   tables (3, 5, 6, 7), exercising the generic `CnfEncodable` path;
//! * `--threads N` — worker threads for the batch `Runner` (0 = one per
//!   core);
//! * `--engine classic|compiled` — whole-space counting strategy: fresh
//!   search per count, or d-DNNF compile-once/query-many;
//! * `--vote-nodes N` — node budget for the ensemble vote circuits (the
//!   compiled engine's region-extraction BDDs and the ABT CNF vote
//!   diagram); an ensemble exceeding it fails with a typed
//!   `VoteCircuitTooLarge` error instead of exhausting memory;
//! * `--budget N` — decision/node budget for the exact and compiled
//!   backends (default 20 000 000); a count exceeding it reports
//!   `BudgetExhausted` instead of hanging;
//! * `--fallback exact|approx[:eps,delta]` — what a blown budget does to a
//!   row: `exact` (the default) keeps today's "-" cells, `approx` climbs
//!   the degradation ladder (symmetry-broken exact retry, then per-region
//!   (ε, δ)-approximate counts) so the row completes `A`-labeled;
//! * `--stream` — print each table row the moment its cell finishes
//!   (completion order, costliest cells scheduled first) instead of
//!   holding the whole table until the batch ends; per-cell errors are
//!   reported inline and the run keeps going;
//! * `--cache-dir DIR` — persist the count cache to `DIR` and reload it on
//!   the next run (cross-process reuse);
//! * `--artifact-dir DIR` — with `--engine compiled`, persist the compiled
//!   circuits and decision-region covers (one `circuits.compiled.v2.bin`
//!   per directory, overwritten) and preload them on the next run — the
//!   warm store `mcml-serve` reads at startup. Repeatable: every named
//!   directory's artifact is preloaded; the build is saved to the first.

use mcml::accmc::CountingEngine;
use mcml::backend::CounterBackend;
use mcml::fallback::FallbackPolicy;
use mcml::framework::ModelFamily;
use relspec::properties::Property;
use std::path::PathBuf;

/// Parsed harness arguments.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Scope override (`None` = per-property default).
    pub scope: Option<usize>,
    /// Use the approximate counter.
    pub approx: bool,
    /// Cap on enumerated positive samples.
    pub max_positive: usize,
    /// RNG seed.
    pub seed: u64,
    /// Restrict to one property.
    pub property: Option<Property>,
    /// Model families evaluated by the whole-space tables.
    pub models: Vec<ModelFamily>,
    /// Worker threads for the batch runner (0 = one per core).
    pub threads: usize,
    /// Whole-space counting engine.
    pub engine: CountingEngine,
    /// Node budget for ensemble vote circuits (region-extraction BDDs).
    pub vote_nodes: usize,
    /// Decision/node budget for the exact and compiled counting backends.
    pub budget: u64,
    /// Degradation policy applied when a count exhausts the budget.
    pub fallback: FallbackPolicy,
    /// Stream table rows as their cells finish instead of waiting for the
    /// whole batch.
    pub stream: bool,
    /// Directory holding the persistent count cache (`None` = in-memory
    /// only).
    pub cache_dir: Option<PathBuf>,
    /// Directories holding circuit artifact stores (empty = no circuit
    /// persistence). Only meaningful with the compiled engine. All are
    /// preloaded; a fresh build is saved to the first.
    pub artifact_dirs: Vec<PathBuf>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scope: None,
            approx: false,
            max_positive: 2_000,
            seed: 0,
            property: None,
            models: vec![ModelFamily::Dt],
            threads: 0,
            engine: CountingEngine::Classic,
            vote_nodes: mcml::encode::MAX_VOTE_NODES,
            budget: 20_000_000,
            fallback: FallbackPolicy::default(),
            stream: false,
            cache_dir: None,
            artifact_dirs: Vec::new(),
        }
    }
}

impl HarnessArgs {
    /// Parses arguments from an iterator of strings (excluding the program
    /// name). Unknown flags abort with a message.
    ///
    /// # Panics
    ///
    /// Panics on malformed or unknown arguments; the binaries treat that as
    /// a usage error.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = HarnessArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scope" => {
                    let v = iter.next().expect("--scope requires a value");
                    out.scope = Some(v.parse().expect("--scope must be a number"));
                }
                "--approx" => out.approx = true,
                "--exact" => out.approx = false,
                "--max-positive" => {
                    let v = iter.next().expect("--max-positive requires a value");
                    out.max_positive = v.parse().expect("--max-positive must be a number");
                }
                "--seed" => {
                    let v = iter.next().expect("--seed requires a value");
                    out.seed = v.parse().expect("--seed must be a number");
                }
                "--property" => {
                    let v = iter.next().expect("--property requires a name");
                    out.property = Some(
                        Property::from_name(&v).unwrap_or_else(|| panic!("unknown property {v:?}")),
                    );
                }
                "--models" => {
                    let v = iter
                        .next()
                        .expect("--models requires a comma-separated list");
                    out.models = v
                        .split(',')
                        .map(|name| {
                            ModelFamily::parse(name.trim()).unwrap_or_else(|| {
                                panic!(
                                    "unknown model family {name:?} \
                                     (expected dt, rft, gbdt or abt)"
                                )
                            })
                        })
                        .collect();
                    assert!(
                        !out.models.is_empty(),
                        "--models requires at least one family"
                    );
                }
                "--threads" => {
                    let v = iter.next().expect("--threads requires a value");
                    out.threads = v.parse().expect("--threads must be a number");
                }
                "--engine" => {
                    let v = iter.next().expect("--engine requires a name");
                    out.engine = CountingEngine::parse(&v).unwrap_or_else(|| {
                        panic!("unknown engine {v:?} (expected classic or compiled)")
                    });
                }
                "--vote-nodes" => {
                    let v = iter.next().expect("--vote-nodes requires a value");
                    out.vote_nodes = v.parse().expect("--vote-nodes must be a number");
                    assert!(out.vote_nodes > 0, "--vote-nodes must be positive");
                }
                "--budget" => {
                    let v = iter.next().expect("--budget requires a value");
                    out.budget = v.parse().expect("--budget must be a number");
                    assert!(out.budget > 0, "--budget must be positive");
                }
                "--fallback" => {
                    let v = iter.next().expect("--fallback requires a policy");
                    out.fallback =
                        FallbackPolicy::parse(&v).unwrap_or_else(|message| panic!("{message}"));
                }
                "--stream" => out.stream = true,
                "--cache-dir" => {
                    let v = iter.next().expect("--cache-dir requires a path");
                    out.cache_dir = Some(PathBuf::from(v));
                }
                "--artifact-dir" => {
                    let v = iter.next().expect("--artifact-dir requires a path");
                    out.artifact_dirs.push(PathBuf::from(v));
                }
                other => panic!("unknown argument {other:?}"),
            }
        }
        assert!(
            !(out.approx && out.engine == CountingEngine::Compiled),
            "--approx is incompatible with --engine compiled (the d-DNNF engine is exact)"
        );
        out
    }

    /// Parses the process arguments.
    pub fn from_env() -> Self {
        HarnessArgs::parse(std::env::args().skip(1))
    }

    /// Warns on stderr when flags only honoured by the `Runner`-backed
    /// AccMC tables (3/5/6/7) were passed to a binary that ignores them,
    /// so an experimenter never mis-attributes a DT table to `--models`.
    pub fn warn_ignored_runner_flags(&self, binary: &str) {
        if self.models != vec![ModelFamily::Dt] {
            eprintln!("warning: {binary} ignores --models (only tables 3, 5, 6 and 7 use it)");
        }
        if self.threads != 0 {
            eprintln!("warning: {binary} ignores --threads (only tables 3, 5, 6 and 7 use it)");
        }
        if self.stream {
            eprintln!("warning: {binary} ignores --stream (only tables 3, 5, 6 and 7 use it)");
        }
    }

    /// The counting backend selected by the flags. The exact and compiled
    /// backends carry the `--budget` allowance (20M by default — generous
    /// enough that a pathological instance reports "-" instead of hanging,
    /// the analogue of the paper's 5 000 s timeout; small values are the
    /// degradation ladder's test bench).
    pub fn backend(&self) -> CounterBackend {
        if self.approx {
            CounterBackend::approx()
        } else if self.engine == CountingEngine::Compiled {
            CounterBackend::compiled_with_budget(self.budget)
        } else {
            CounterBackend::exact_with_budget(self.budget)
        }
    }

    /// The properties selected (all 16 unless `--property` was given).
    pub fn properties(&self) -> Vec<Property> {
        match self.property {
            Some(p) => vec![p],
            None => Property::all().to_vec(),
        }
    }

    /// The scope to use for a property.
    pub fn scope_for(&self, property: Property) -> usize {
        self.scope
            .unwrap_or_else(|| crate::scopes::study_scope(property))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> HarnessArgs {
        HarnessArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.scope, None);
        assert!(!a.approx);
        assert_eq!(a.properties().len(), 16);
        assert_eq!(a.models, vec![ModelFamily::Dt]);
        assert_eq!(a.threads, 0);
    }

    #[test]
    fn parses_flags() {
        let a = parse(&[
            "--scope",
            "5",
            "--approx",
            "--seed",
            "9",
            "--property",
            "reflexive",
        ]);
        assert_eq!(a.scope, Some(5));
        assert!(a.approx);
        assert_eq!(a.seed, 9);
        assert_eq!(a.properties(), vec![Property::Reflexive]);
        assert_eq!(a.scope_for(Property::Reflexive), 5);
        assert_eq!(a.backend().name(), "approx");
    }

    #[test]
    fn parses_model_families() {
        let a = parse(&["--models", "dt,rft,gbdt,abt", "--threads", "2"]);
        assert_eq!(a.models, ModelFamily::all().to_vec());
        assert_eq!(a.threads, 2);
        let single = parse(&["--models", "RFT"]);
        assert_eq!(single.models, vec![ModelFamily::Rft]);
        let boosted = parse(&["--models", "GBDT"]);
        assert_eq!(boosted.models, vec![ModelFamily::Gbdt]);
    }

    #[test]
    fn parses_stream() {
        assert!(parse(&["--stream"]).stream);
        assert!(!parse(&[]).stream);
    }

    #[test]
    fn parses_budget_and_fallback() {
        let defaults = parse(&[]);
        assert_eq!(defaults.budget, 20_000_000);
        assert_eq!(defaults.fallback, FallbackPolicy::Fail);
        let a = parse(&["--budget", "1", "--fallback", "approx"]);
        assert_eq!(a.budget, 1);
        assert_eq!(a.fallback, FallbackPolicy::approx());
        let tuned = parse(&["--fallback", "approx:0.8,0.1"]);
        assert_eq!(
            tuned.fallback,
            FallbackPolicy::SymmetryThenApprox {
                epsilon: 0.8,
                delta: 0.1
            }
        );
        assert_eq!(
            parse(&["--fallback", "exact"]).fallback,
            FallbackPolicy::Fail
        );
        // The ladder is a budget response, not a backend: it composes with
        // the compiled engine (unlike --approx, which replaces the backend).
        let compiled = parse(&["--engine", "compiled", "--fallback", "approx"]);
        assert_eq!(compiled.backend().name(), "compiled");
    }

    #[test]
    #[should_panic(expected = "unknown fallback policy")]
    fn unknown_fallback_panics() {
        parse(&["--fallback", "magic"]);
    }

    #[test]
    #[should_panic(expected = "--budget must be positive")]
    fn zero_budget_panics() {
        parse(&["--budget", "0"]);
    }

    #[test]
    fn parses_vote_nodes() {
        let a = parse(&["--vote-nodes", "1024"]);
        assert_eq!(a.vote_nodes, 1024);
        assert_eq!(parse(&[]).vote_nodes, mcml::encode::MAX_VOTE_NODES);
    }

    #[test]
    #[should_panic(expected = "--vote-nodes must be positive")]
    fn zero_vote_nodes_panics() {
        parse(&["--vote-nodes", "0"]);
    }

    #[test]
    fn parses_engine_and_cache_dir() {
        let a = parse(&["--engine", "compiled", "--cache-dir", "/tmp/mcml-cache"]);
        assert_eq!(a.engine, CountingEngine::Compiled);
        assert_eq!(a.backend().name(), "compiled");
        assert_eq!(
            a.cache_dir.as_deref(),
            Some(std::path::Path::new("/tmp/mcml-cache"))
        );
        let default = parse(&[]);
        assert_eq!(default.engine, CountingEngine::Classic);
        assert_eq!(default.cache_dir, None);
        assert_eq!(parse(&["--engine", "CLASSIC"]).backend().name(), "exact");
    }

    #[test]
    fn parses_artifact_dir() {
        // The flag is repeatable: every directory is preloaded, the build
        // is saved to the first.
        let a = parse(&[
            "--engine",
            "compiled",
            "--artifact-dir",
            "/tmp/mcml-artifacts",
            "--artifact-dir",
            "/tmp/mcml-artifacts-2",
        ]);
        assert_eq!(
            a.artifact_dirs,
            vec![
                std::path::PathBuf::from("/tmp/mcml-artifacts"),
                std::path::PathBuf::from("/tmp/mcml-artifacts-2"),
            ]
        );
        assert!(parse(&[]).artifact_dirs.is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown engine")]
    fn unknown_engine_panics() {
        parse(&["--engine", "magic"]);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn approx_with_compiled_engine_panics() {
        parse(&["--approx", "--engine", "compiled"]);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flag_panics() {
        parse(&["--bogus"]);
    }

    #[test]
    #[should_panic(expected = "unknown property")]
    fn unknown_property_panics() {
        parse(&["--property", "nope"]);
    }

    #[test]
    #[should_panic(expected = "unknown model family")]
    fn unknown_model_family_panics() {
        parse(&["--models", "dt,svm"]);
    }
}
