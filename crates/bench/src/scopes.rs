//! Scope selection for the reproduction harness.
//!
//! The paper selects, per property, the smallest scope with ≥10 000 positive
//! solutions under symmetry breaking (≥90 000 without), which for the
//! sparsest properties means scopes up to 20 (a 2⁴⁰⁰ state space). Those
//! sizes exist to stress industrial model counters; our from-scratch
//! counters and enumerator work comfortably up to scope 4–5, so the harness
//! defaults to a uniform reduced scope and records the substitution in
//! `EXPERIMENTS.md`. The shape of every result (near-perfect test metrics,
//! collapsed whole-space precision, the Reflexive/Irreflexive exceptions)
//! is preserved at these scopes.

use relspec::properties::Property;

/// The scope the harness uses for a property when datasets are generated
/// *with* symmetry breaking (the analogue of the paper's Table 1 scopes).
pub fn study_scope(property: Property) -> usize {
    match property {
        // These four properties have fewer than 25 positive solutions at
        // scope 4 (n!, Bell(n)), far too few to train on; scope 5 gives them
        // 52-120 positives while staying countable.
        Property::Bijective
        | Property::Surjective
        | Property::TotalOrder
        | Property::Equivalence => 5,
        // Everything else uses scope 4, where exact counting is fast and the
        // positive sets have hundreds to thousands of elements.
        _ => 4,
    }
}

/// The scope used when symmetry breaking is disabled (the paper uses larger
/// positive-sample thresholds there; we keep the same reduced scope).
pub fn study_scope_no_sb(property: Property) -> usize {
    study_scope(property)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_are_small_enough_for_exact_counting() {
        for p in Property::all() {
            assert!(study_scope(p) <= 5);
            assert!(study_scope_no_sb(p) <= 5);
            // And never below the smallest scope at which every property has
            // both positive and negative instances.
            assert!(study_scope(p) >= 3);
        }
    }
}
