//! Shared driver for the AccMC tables (Tables 3, 5, 6 and 7).
//!
//! Each of those tables runs the same per-property experiment — train a
//! decision tree on 10% of the balanced dataset, evaluate it on the test set
//! and against the whole bounded space — and differs only in which symmetry
//! settings the dataset and the ground truth use.

use crate::cli::HarnessArgs;
use mcml::framework::{Experiment, ExperimentConfig};
use mcml::report::{format_metric, TextTable};
use relspec::properties::Property;

/// Runs one AccMC-style table and prints it.
///
/// `make_config` maps `(property, scope)` to the experiment configuration
/// for the table being reproduced (e.g. [`ExperimentConfig::table3`]).
pub fn run_accmc_table(
    title: &str,
    args: &HarnessArgs,
    make_config: impl Fn(Property, usize) -> ExperimentConfig,
) {
    let backend = args.backend();
    let mut table = TextTable::new(vec![
        "Property",
        "Acc(test)",
        "Prec(test)",
        "Rec(test)",
        "F1(test)",
        "Acc(phi)",
        "Prec(phi)",
        "Rec(phi)",
        "F1(phi)",
        "Time[s]",
    ]);

    for property in args.properties() {
        let scope = args.scope_for(property);
        let mut config = make_config(property, scope);
        config.max_positive = args.max_positive;
        config.seed = args.seed;
        let result = Experiment::new(config).run(&backend);

        let t = &result.test_metrics;
        let (phi, time) = match &result.whole_space {
            Some(ws) => (
                [
                    Some(ws.metrics.accuracy),
                    Some(ws.metrics.precision),
                    Some(ws.metrics.recall),
                    Some(ws.metrics.f1),
                ],
                format!("{:.1}", ws.counting_time.as_secs_f64()),
            ),
            None => ([None, None, None, None], "-".to_string()),
        };
        table.push_row(vec![
            property.name().to_string(),
            format_metric(Some(t.accuracy)),
            format_metric(Some(t.precision)),
            format_metric(Some(t.recall)),
            format_metric(Some(t.f1)),
            format_metric(phi[0]),
            format_metric(phi[1]),
            format_metric(phi[2]),
            format_metric(phi[3]),
            time,
        ]);
    }

    println!("{title}");
    println!("{}", table.render());
}
