//! Shared driver for the AccMC tables (Tables 3, 5, 6 and 7).
//!
//! Each of those tables runs the same per-property experiment — train a
//! model on the balanced dataset, evaluate it on the test set and against
//! the whole bounded space — and differs only in which symmetry settings the
//! dataset and the ground truth use. The rows are executed by the batch
//! [`Runner`], which deduplicates dataset construction and ground-truth
//! translation, shares one memoizing counter across all rows, and runs them
//! in parallel; `--models dt,rft,abt,gbdt` evaluates any subset of the
//! CNF-encodable model families per property, `--engine compiled` switches
//! the whole-space evaluation to the d-DNNF compile-once/query-many plan
//! (all four families ride it through their decision regions, with
//! `--vote-nodes` bounding the ensemble vote circuits), and
//! `--cache-dir DIR` persists the count cache across processes.

use crate::cli::HarnessArgs;
use mcml::counter::CachedCounter;
use mcml::framework::{ExperimentConfig, Runner};
use mcml::persist;
use mcml::report::{format_count_guarantee, format_metric, TextTable};
use relspec::properties::Property;
use std::path::PathBuf;

/// The cache file under `--cache-dir`, if configured. The file name spells
/// out the backend so differently-configured runs (exact / approx /
/// compiled) never read each other's outcomes.
fn cache_file(args: &HarnessArgs) -> Option<PathBuf> {
    args.cache_dir
        .as_ref()
        .map(|dir| dir.join(persist::cache_file_name(args.backend().name())))
}

/// Runs one AccMC-style table and prints it.
///
/// `make_config` maps `(property, scope)` to the experiment configuration
/// for the table being reproduced (e.g. [`ExperimentConfig::table3`]).
pub fn run_accmc_table(
    title: &str,
    args: &HarnessArgs,
    make_config: impl Fn(Property, usize) -> ExperimentConfig,
) {
    let backend = CachedCounter::new(args.backend());
    if let Some(path) = cache_file(args) {
        match persist::load_outcomes(&path, args.backend().name()) {
            Ok(entries) => {
                eprintln!(
                    "(loaded {} cached counts from {})",
                    entries.len(),
                    path.display()
                );
                backend.preload(entries);
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => eprintln!(
                "warning: ignoring unreadable count cache {}: {e}",
                path.display()
            ),
        }
    }

    let configs: Vec<ExperimentConfig> = args
        .properties()
        .into_iter()
        .map(|property| {
            let mut config = make_config(property, args.scope_for(property));
            config.max_positive = args.max_positive;
            config.seed = args.seed;
            config
        })
        .collect();

    let rows = Runner::new()
        .families(&args.models)
        .threads(args.threads)
        .engine(args.engine)
        .vote_node_bound(args.vote_nodes)
        .run(&configs, &backend)
        .unwrap_or_else(|e| panic!("malformed experiment batch: {e}"));

    let mut table = TextTable::new(vec![
        "Property",
        "Model",
        "Acc(test)",
        "Prec(test)",
        "Rec(test)",
        "F1(test)",
        "Acc(phi)",
        "Prec(phi)",
        "Rec(phi)",
        "F1(phi)",
        "Count",
        "Time[s]",
    ]);

    for row in &rows {
        let t = &row.test_metrics;
        let (phi, time) = match &row.whole_space {
            Some(ws) => (
                [
                    Some(ws.metrics.accuracy),
                    Some(ws.metrics.precision),
                    Some(ws.metrics.recall),
                    Some(ws.metrics.f1),
                ],
                format!("{:.1}", ws.counting_time.as_secs_f64()),
            ),
            None => ([None, None, None, None], "-".to_string()),
        };
        table.push_row(vec![
            row.config.property.name().to_string(),
            row.family.name().to_string(),
            format_metric(Some(t.accuracy)),
            format_metric(Some(t.precision)),
            format_metric(Some(t.recall)),
            format_metric(Some(t.f1)),
            format_metric(phi[0]),
            format_metric(phi[1]),
            format_metric(phi[2]),
            format_metric(phi[3]),
            format_count_guarantee(row.whole_space.as_ref()),
            time,
        ]);
    }

    println!("{title}");
    println!("(counting engine: {})", args.engine);
    println!("{}", table.render());
    let stats = backend.stats();
    if stats.hits > 0 {
        println!(
            "(counter cache: {} hits / {} misses)",
            stats.hits, stats.misses
        );
    }

    if let Some(path) = cache_file(args) {
        match persist::save_outcomes(&path, args.backend().name(), &backend.snapshot()) {
            Ok(written) => eprintln!("(saved {} cached counts to {})", written, path.display()),
            Err(e) => eprintln!(
                "warning: failed to save count cache {}: {e}",
                path.display()
            ),
        }
    }
}
