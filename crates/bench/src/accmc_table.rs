//! Shared driver for the AccMC tables (Tables 3, 5, 6 and 7).
//!
//! Each of those tables runs the same per-property experiment — train a
//! model on the balanced dataset, evaluate it on the test set and against
//! the whole bounded space — and differs only in which symmetry settings the
//! dataset and the ground truth use. The rows are executed by the batch
//! [`Runner`], which deduplicates dataset construction and ground-truth
//! translation, shares one memoizing counter across all rows, and runs them
//! in parallel; `--models dt,rft,gbdt,abt,mlp,svm` evaluates any subset of
//! the CNF-encodable model families per property (`--mlp-hidden` and
//! `--quant-bits` tune the quantized neural/margin families), `--engine
//! compiled` switches the whole-space evaluation to the d-DNNF
//! compile-once/query-many plan (all six families ride it through their
//! decision regions, with `--vote-nodes` bounding the vote circuits), and
//! `--cache-dir DIR` persists the count cache across processes.
//! `--artifact-dir DIR` (compiled engine only, repeatable) additionally
//! persists the compiled circuits and decision-region covers — every
//! named directory is preloaded on the next run and the fresh build is
//! saved to the first, forming the warm store(s) the `mcml-serve` query
//! service reads.
//!
//! Rows run through the streaming batch scheduler either way: `--stream`
//! prints each row the moment its cell lands (completion order — the
//! costliest cells start first, cheap rows overtake them), and without it
//! the table is buffered and printed whole. In both modes a failed cell
//! costs one stderr warning, not the batch.

use crate::cli::HarnessArgs;
use mcml::accmc::CountingEngine;
use mcml::artifact;
use mcml::counter::CachedCounter;
use mcml::framework::{CellError, ExperimentConfig, Runner, RunnerRow, SinkDecision};
use mcml::persist;
use mcml::report::{format_count_guarantee, format_metric, TextTable};
use relspec::properties::Property;
use std::path::PathBuf;

/// Column headers shared by the buffered and streaming renderers.
const COLUMNS: [&str; 12] = [
    "Property",
    "Model",
    "Acc(test)",
    "Prec(test)",
    "Rec(test)",
    "F1(test)",
    "Acc(phi)",
    "Prec(phi)",
    "Rec(phi)",
    "F1(phi)",
    "Count",
    "Time[s]",
];

/// Fixed column widths for `--stream` mode, where a row prints before the
/// batch's widest cell is known.
const STREAM_WIDTHS: [usize; 12] = [16, 5, 9, 10, 9, 8, 8, 9, 8, 7, 26, 7];

/// One streamed table line with the fixed column layout.
fn stream_line<S: AsRef<str>>(cells: &[S]) -> String {
    cells
        .iter()
        .zip(STREAM_WIDTHS)
        .map(|(cell, width)| format!("{:<width$}", cell.as_ref()))
        .collect::<Vec<_>>()
        .join(" ")
        .trim_end()
        .to_string()
}

/// The printable cells of one finished row, in [`COLUMNS`] order.
fn row_cells(row: &RunnerRow) -> Vec<String> {
    let t = &row.test_metrics;
    let (phi, time) = match &row.whole_space {
        Some(ws) => (
            [
                Some(ws.metrics.accuracy),
                Some(ws.metrics.precision),
                Some(ws.metrics.recall),
                Some(ws.metrics.f1),
            ],
            format!("{:.1}", ws.counting_time.as_secs_f64()),
        ),
        None => ([None, None, None, None], "-".to_string()),
    };
    vec![
        row.config.property.name().to_string(),
        row.family.name().to_string(),
        format_metric(Some(t.accuracy)),
        format_metric(Some(t.precision)),
        format_metric(Some(t.recall)),
        format_metric(Some(t.f1)),
        format_metric(phi[0]),
        format_metric(phi[1]),
        format_metric(phi[2]),
        format_metric(phi[3]),
        format_count_guarantee(row.whole_space.as_ref()),
        time,
    ]
}

/// One stderr warning per failed cell; the rest of the batch still prints.
fn warn_failed_cell(cell: &CellError) {
    eprintln!(
        "warning: row {}/{} (scope {}) failed: {}",
        cell.config.property.name(),
        cell.family,
        cell.config.scope,
        cell.error
    );
}

/// The cache file under `--cache-dir`, if configured. The file name spells
/// out the backend so differently-configured runs (exact / approx /
/// compiled) never read each other's outcomes.
fn cache_file(args: &HarnessArgs) -> Option<PathBuf> {
    args.cache_dir
        .as_ref()
        .map(|dir| dir.join(persist::cache_file_name(&args.backend().cache_tag())))
}

/// The circuit-artifact files under the `--artifact-dir`s, if configured
/// and meaningful: only the compiled engine has circuits to persist, so
/// the flag warns and is ignored otherwise. Every file is preloaded; a
/// fresh build is saved to the first.
fn artifact_files(args: &HarnessArgs) -> Vec<PathBuf> {
    if args.artifact_dirs.is_empty() {
        return Vec::new();
    }
    if args.engine != CountingEngine::Compiled {
        eprintln!("warning: --artifact-dir is ignored without --engine compiled");
        return Vec::new();
    }
    args.artifact_dirs
        .iter()
        .map(|dir| dir.join(artifact::artifact_file_name("compiled")))
        .collect()
}

/// Runs one AccMC-style table and prints it.
///
/// `make_config` maps `(property, scope)` to the experiment configuration
/// for the table being reproduced (e.g. [`ExperimentConfig::table3`]).
pub fn run_accmc_table(
    title: &str,
    args: &HarnessArgs,
    make_config: impl Fn(Property, usize) -> ExperimentConfig,
) {
    let inner = args.backend();
    // A clone of the compiled counter shares its circuit cache, so holding
    // one here lets the artifact path preload/snapshot the same cache the
    // runner counts through.
    let compiled = inner.as_compiled().cloned();
    let artifact_paths = artifact_files(args);
    if let Some(counter) = &compiled {
        for path in &artifact_paths {
            match artifact::load_artifact(path, "compiled") {
                Ok(loaded) => {
                    eprintln!(
                        "(preloaded {} compiled circuits from {})",
                        loaded.circuits.len(),
                        path.display()
                    );
                    counter.preload_circuits(loaded.circuits);
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => eprintln!(
                    "warning: ignoring unreadable circuit artifact {}: {e}",
                    path.display()
                ),
            }
        }
    }
    let backend = CachedCounter::new(inner);
    if let Some(path) = cache_file(args) {
        match persist::load_outcomes(&path, &args.backend().cache_tag()) {
            Ok(entries) => {
                eprintln!(
                    "(loaded {} cached counts from {})",
                    entries.len(),
                    path.display()
                );
                backend.preload(entries);
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => eprintln!(
                "warning: ignoring unreadable count cache {}: {e}",
                path.display()
            ),
        }
    }

    let configs: Vec<ExperimentConfig> = args
        .properties()
        .into_iter()
        .map(|property| {
            let mut config = make_config(property, args.scope_for(property));
            config.max_positive = args.max_positive;
            config.seed = args.seed;
            config
        })
        .collect();

    let runner = Runner::new()
        .families(&args.models)
        .threads(args.threads)
        .engine(args.engine)
        .vote_node_bound(args.vote_nodes)
        .fallback(args.fallback)
        .mlp_hidden(args.mlp_hidden)
        .quant_bits(args.quant_bits);
    if args.stream {
        println!("{title}");
        println!(
            "(counting engine: {}; streaming rows in completion order)",
            args.engine
        );
        println!("{}", stream_line(&COLUMNS));
        runner
            .run_stream(
                &configs,
                &backend,
                |cell: Result<&RunnerRow, &CellError>| {
                    match cell {
                        Ok(row) => println!("{}", stream_line(&row_cells(row))),
                        Err(failed) => warn_failed_cell(failed),
                    }
                    SinkDecision::Continue
                },
            )
            .unwrap_or_else(|e| panic!("malformed experiment batch: {e}"));
    } else {
        let outcome = runner
            .run_collect(&configs, &backend)
            .unwrap_or_else(|e| panic!("malformed experiment batch: {e}"));
        for failed in &outcome.errors {
            warn_failed_cell(failed);
        }
        let mut table = TextTable::new(COLUMNS.to_vec());
        for row in &outcome.rows {
            table.push_row(row_cells(row));
        }
        println!("{title}");
        println!("(counting engine: {})", args.engine);
        println!("{}", table.render());
    }
    let stats = backend.stats();
    if stats.hits > 0 {
        println!(
            "(counter cache: {} hits / {} misses)",
            stats.hits, stats.misses
        );
    }

    if let Some(path) = cache_file(args) {
        match persist::save_outcomes(&path, &args.backend().cache_tag(), &backend.snapshot()) {
            Ok(written) => eprintln!("(saved {} cached counts to {})", written, path.display()),
            Err(e) => eprintln!(
                "warning: failed to save count cache {}: {e}",
                path.display()
            ),
        }
    }

    if let (Some(path), Some(counter)) = (artifact_paths.first(), &compiled) {
        match runner.build_artifact(&configs, counter) {
            Ok(built) => match artifact::save_artifact(path, &built) {
                Ok(written) => eprintln!(
                    "(saved {} compiled circuits and {} region covers to {})",
                    written,
                    built.covers.len(),
                    path.display()
                ),
                Err(e) => eprintln!(
                    "warning: failed to save circuit artifact {}: {e}",
                    path.display()
                ),
            },
            Err(e) => eprintln!("warning: failed to build circuit artifact: {e}"),
        }
    }
}
