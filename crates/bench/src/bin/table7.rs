//! Table 7: symmetry mismatch, scenario 2 — the datasets are generated
//! without symmetry breaking but the whole-space evaluation constrains the
//! ground truth with symmetry-breaking predicates.

use mcml::framework::ExperimentConfig;
use mcml_bench::accmc_table::run_accmc_table;
use mcml_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    run_accmc_table(
        "Table 7: DT trained without SB, evaluated on whole space with SB",
        &args,
        ExperimentConfig::table7,
    );
}
