//! Table 1: subject properties and model counts.
//!
//! For every property the harness reports the scope, the state-space size,
//! the number of positive solutions enumerated by the SAT backend under
//! symmetry breaking, and the counts of the ground-truth formula with and
//! without symmetry breaking from both the approximate and the exact
//! counter (the ApproxMC / ProjMC columns of the paper).

use datagen::positive::enumerate_positive;
use mcml::backend::CounterBackend;
use mcml::report::{format_count, TextTable};
use mcml_bench::HarnessArgs;
use relspec::symmetry::SymmetryBreaking;
use relspec::translate::{translate_to_cnf, TranslateOptions};

fn main() {
    let args = HarnessArgs::from_env();
    args.warn_ignored_runner_flags("table1");
    let approx = CounterBackend::approx();
    let exact = CounterBackend::exact_with_budget(50_000_000);

    let mut table = TextTable::new(vec![
        "Property",
        "Scope",
        "StateSpace",
        "Valid-SymBr(enum)",
        "Est-Valid-SymBr",
        "Est-Valid-NoSymBr",
        "Valid-SymBr(exact)",
        "Valid-NoSymBr(exact)",
    ]);

    for property in args.properties() {
        let scope = args.scope_for(property);
        let sb = SymmetryBreaking::Transpositions;

        let enumerated = enumerate_positive(property, scope, sb, args.max_positive);
        let enumerated_str = if enumerated.truncated {
            format!(">{}", enumerated.instances.len())
        } else {
            enumerated.instances.len().to_string()
        };

        let gt_sb = translate_to_cnf(
            &property.spec(),
            TranslateOptions::new(scope).with_symmetry(sb),
        );
        let gt_plain = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));

        let fmt = |c: mcml::counter::CountOutcome| c.value().map_or("-".to_string(), format_count);
        table.push_row(vec![
            property.name().to_string(),
            scope.to_string(),
            format!("2^{}", scope * scope),
            enumerated_str,
            fmt(approx.count(&gt_sb.cnf_positive())),
            fmt(approx.count(&gt_plain.cnf_positive())),
            fmt(exact.count(&gt_sb.cnf_positive())),
            fmt(exact.count(&gt_plain.cnf_positive())),
        ]);
    }

    println!("Table 1: subject properties and model counts (reduced scopes)");
    println!("{}", table.render());
}
