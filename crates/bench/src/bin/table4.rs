//! Table 4: classification results on the test set for PartialOrder with
//! symmetry breaking turned off, across train:test ratios and all six models.

use datagen::builder::{DatasetBuilder, DatasetConfig, SplitRatio};
use mcml::framework::evaluate_all_models;
use mcml::report::{format_metric, TextTable};
use mcml_bench::HarnessArgs;
use relspec::properties::Property;

fn main() {
    let args = HarnessArgs::from_env();
    args.warn_ignored_runner_flags("table4");
    let property = args.property.unwrap_or(Property::PartialOrder);
    let scope = args.scope_for(property);

    let dataset = DatasetBuilder::new().build(
        DatasetConfig::new(property, scope)
            .without_symmetry()
            .with_max_positive(args.max_positive)
            .with_seed(args.seed),
    );

    let mut table = TextTable::new(vec![
        "Ratio",
        "Model",
        "Accuracy",
        "Precision",
        "Recall",
        "F1-score",
    ]);
    for ratio in [SplitRatio::new(75), SplitRatio::new(25), SplitRatio::new(1)] {
        let (train, test) = dataset.split(ratio);
        for report in evaluate_all_models(&train, &test, args.seed) {
            table.push_row(vec![
                ratio.to_string(),
                report.model.to_string(),
                format_metric(Some(report.metrics.accuracy)),
                format_metric(Some(report.metrics.precision)),
                format_metric(Some(report.metrics.recall)),
                format_metric(Some(report.metrics.f1)),
            ]);
        }
    }

    println!(
        "Table 4: test-set results for {property} at scope {scope} (symmetry breaking off, {} samples)",
        dataset.dataset.len()
    );
    println!("{}", table.render());
}
