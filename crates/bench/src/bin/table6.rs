//! Table 6: symmetry mismatch, scenario 1 — the datasets are generated with
//! symmetry breaking but the whole-space evaluation uses the unconstrained
//! ground truth (symmetries present only at evaluation time).

use mcml::framework::ExperimentConfig;
use mcml_bench::accmc_table::run_accmc_table;
use mcml_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    run_accmc_table(
        "Table 6: DT trained with SB, evaluated on whole space without SB",
        &args,
        ExperimentConfig::table6,
    );
}
