//! Table 9: traditional vs MCML precision for the Antisymmetric property as
//! the class ratio of the training dataset is varied from 99:1 to 1:99.
//!
//! The traditional precision is computed on a held-out test set drawn with
//! the *same* skewed ratio; the MCML precision is computed against the
//! entire state space, whose true positive:negative ratio is heavily skewed
//! toward negatives.

use datagen::builder::{DatasetBuilder, DatasetConfig, SplitRatio};
use mcml::accmc::AccMc;
use mcml::framework::evaluate_classifier;
use mcml::report::{format_metric, TextTable};
use mcml_bench::HarnessArgs;
use mlkit::tree::{DecisionTree, TreeConfig};
use relspec::properties::Property;
use relspec::translate::{translate_to_cnf, TranslateOptions};

fn main() {
    let args = HarnessArgs::from_env();
    args.warn_ignored_runner_flags("table9");
    let property = args.property.unwrap_or(Property::Antisymmetric);
    let scope = args.scope_for(property);
    let backend = args.backend();

    // A large balanced pool to resample from.
    let pool = DatasetBuilder::new().build(
        DatasetConfig::new(property, scope)
            .without_symmetry()
            .with_max_positive(args.max_positive.max(2_000))
            .with_seed(args.seed),
    );
    let ground_truth = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));

    let mut table = TextTable::new(vec![
        "Valid:Invalid",
        "Traditional Precision",
        "MCML Precision",
    ]);

    for positive_percent in [99u32, 90, 75, 50, 25, 10, 1] {
        let skewed = pool
            .dataset
            .with_class_ratio(positive_percent, args.seed + 17);
        let (train, test) = skewed.split(SplitRatio::new(75), args.seed + 23);
        let tree = DecisionTree::fit(&train, TreeConfig::default());
        let traditional = evaluate_classifier(&tree, &test);
        let mcml_precision = AccMc::new(&backend)
            .evaluate(&ground_truth, &tree)
            .expect("tree trained at the ground truth's scope")
            .map(|r| r.metrics.precision);
        table.push_row(vec![
            format!("{positive_percent}:{}", 100 - positive_percent),
            format_metric(Some(traditional.precision)),
            format_metric(mcml_precision),
        ]);
    }

    println!(
        "Table 9: traditional vs MCML precision for {property} at scope {scope} across training class ratios"
    );
    println!("{}", table.render());
}
