//! Table 5: decision-tree performance with symmetry breaking off everywhere
//! (datasets and ground truth).

use mcml::framework::ExperimentConfig;
use mcml_bench::accmc_table::run_accmc_table;
use mcml_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    run_accmc_table(
        "Table 5: DT on test set (no SB) vs whole space (phi without SB)",
        &args,
        ExperimentConfig::table5,
    );
}
