//! Table 3: decision-tree performance on the test set (symmetry breaking on)
//! and against the entire state space with the ground truth φ constrained by
//! the same symmetry-breaking predicates.

use mcml::framework::ExperimentConfig;
use mcml_bench::accmc_table::run_accmc_table;
use mcml_bench::HarnessArgs;

fn main() {
    let args = HarnessArgs::from_env();
    run_accmc_table(
        "Table 3: DT on test set (SB on) vs whole space (phi with SB)",
        &args,
        ExperimentConfig::table3,
    );
}
