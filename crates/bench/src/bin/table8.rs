//! Table 8: quantifying the semantic difference between two decision-tree
//! models per property, over the entire input space (DiffMC).
//!
//! As in the paper, the two trees are trained on the same data with
//! different hyper-parameters (an unrestricted CART vs a depth-limited one).

use mcml::diffmc::DiffMc;
use mcml::framework::{Experiment, ExperimentConfig};
use mcml::report::{format_count, TextTable};
use mcml_bench::HarnessArgs;
use mlkit::tree::TreeConfig;

fn main() {
    let args = HarnessArgs::from_env();
    args.warn_ignored_runner_flags("table8");
    let backend = args.backend();

    let mut table = TextTable::new(vec!["Subject", "TT", "TF", "FT", "FF", "Diff", "Time[s]"]);

    for property in args.properties() {
        let scope = args.scope_for(property);
        let mut config = ExperimentConfig::table3(property, scope);
        config.max_positive = args.max_positive;
        config.seed = args.seed;
        let experiment = Experiment::new(config);
        let (tree_a, _) = experiment.train_tree(TreeConfig::default());
        let (tree_b, _) = experiment.train_tree(TreeConfig {
            max_depth: Some(6),
            min_samples_split: 4,
            ..TreeConfig::default()
        });

        let comparison = DiffMc::new(&backend)
            .vote_node_bound(args.vote_nodes)
            .compare(&tree_a, &tree_b)
            .expect("trees trained at the same scope share the feature space");
        match comparison {
            None => table.push_row(vec![
                property.name().to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
            Some(r) => table.push_row(vec![
                property.name().to_string(),
                format_count(r.counts.tt),
                format_count(r.counts.tf),
                format_count(r.counts.ft),
                format_count(r.counts.ff),
                format!("{:.2}", r.counts.diff() * 100.0),
                format!("{:.1}", r.counting_time.as_secs_f64()),
            ]),
        }
    }

    println!("Table 8: differences between two decision-tree models (Diff in % of the space)");
    println!("{}", table.render());
}
