//! # modelcount
//!
//! Projected model counters for the MCML reproduction.
//!
//! Stand-ins for the two counters the paper uses:
//!
//! * [`exact`] — an exact projected counter (the role ProjMC plays in the
//!   paper): DPLL-style counting over the projection variables with
//!   connected-component decomposition and component caching;
//! * [`approx`] — an (ε, δ) approximate counter (the role ApproxMC plays):
//!   random XOR parity constraints over the projection set plus bounded
//!   enumeration per cell, with a median taken across rounds;
//! * [`brute`] — a 2ⁿ brute-force counter used as a test oracle at tiny
//!   scopes.

pub mod approx;
pub mod brute;
pub mod exact;

pub use approx::{ApproxConfig, ApproxCounter};
pub use exact::ExactCounter;
