//! Approximate projected model counting with XOR hashing.
//!
//! This plays the role ApproxMC plays in the MCML paper. The algorithm is the
//! standard hashing-based (ε, δ) scheme of Chakraborty–Meel–Vardi:
//!
//! 1. pick a *pivot* from the tolerance ε;
//! 2. add `m` random parity (XOR) constraints over the projection variables,
//!    partitioning the projected solution space into ~2^m cells;
//! 3. enumerate the solutions of one cell up to `pivot + 1`; search for the
//!    smallest `m` whose cell is "small" (≤ pivot) and return
//!    `cell_count * 2^m`;
//! 4. repeat for `t` rounds (derived from the confidence δ) and report the
//!    median.
//!
//! If the formula has at most `pivot` projected solutions the count returned
//! is exact (the m = 0 cell is already small).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use satkit::cnf::{Cnf, Var};
use satkit::enumerate::{enumerate_projected, EnumerateConfig};
use satkit::xor::{add_xor_constraint, XorConstraint};

/// Configuration of the approximate counter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxConfig {
    /// Tolerance ε: the estimate is within a factor `1 + ε` of the true count
    /// with probability at least `1 - δ`.
    pub epsilon: f64,
    /// Confidence parameter δ.
    pub delta: f64,
    /// RNG seed; runs with the same seed are reproducible.
    pub seed: u64,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig {
            epsilon: 0.4,
            delta: 0.2,
            seed: 0xC0FFEE,
        }
    }
}

impl ApproxConfig {
    /// The cell-size threshold ("pivot") induced by ε.
    pub fn pivot(&self) -> usize {
        (9.84 * (1.0 + 1.0 / self.epsilon).powi(2)).ceil() as usize
    }

    /// The number of independent rounds induced by δ.
    pub fn rounds(&self) -> usize {
        let t = (17.0 * (3.0 / self.delta).log2() / 10.0).ceil() as usize;
        t.max(3) | 1 // odd, so the median is a single round's estimate
    }
}

/// Approximate projected model counter (ApproxMC-style).
#[derive(Debug, Clone, Default)]
pub struct ApproxCounter {
    config: ApproxConfig,
}

impl ApproxCounter {
    /// Creates a counter with the given configuration.
    pub fn new(config: ApproxConfig) -> Self {
        ApproxCounter { config }
    }

    /// The counter's configuration.
    pub fn config(&self) -> &ApproxConfig {
        &self.config
    }

    /// Estimates the number of models of `cnf` projected onto its effective
    /// projection set.
    pub fn count(&self, cnf: &Cnf) -> u128 {
        let projection = cnf.effective_projection();
        let pivot = self.config.pivot();
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);

        // Base case: if the whole projected space is small, the count is exact.
        let base = bounded_count(cnf, &projection, pivot);
        if base <= pivot {
            return base as u128;
        }

        let mut estimates: Vec<u128> = Vec::new();
        let mut prev_m: usize = 1;
        for _ in 0..self.config.rounds() {
            if let Some(est) = self.one_round(cnf, &projection, pivot, prev_m, &mut rng) {
                prev_m = est.1;
                estimates.push(est.0);
            }
        }
        if estimates.is_empty() {
            // Every round failed to find a small cell (can only happen when
            // the projection is tiny); fall back to the bounded count, which
            // is then a lower bound.
            return base as u128;
        }
        estimates.sort();
        estimates[estimates.len() / 2]
    }

    /// One hashing round: returns `(estimate, m_used)`.
    fn one_round(
        &self,
        cnf: &Cnf,
        projection: &[Var],
        pivot: usize,
        start_m: usize,
        rng: &mut ChaCha8Rng,
    ) -> Option<(u128, usize)> {
        let max_m = projection.len();
        // Draw the full stack of XOR constraints for this round up front so
        // that the cells for different m are nested (as in ApproxMC).
        let xors: Vec<XorConstraint> = (0..max_m).map(|_| random_xor(projection, rng)).collect();

        let cell = |m: usize| -> usize {
            let mut hashed = cnf.clone();
            for x in &xors[..m] {
                add_xor_constraint(&mut hashed, x);
            }
            bounded_count(&hashed, projection, pivot)
        };

        // Galloping search upward from the previous round's m for the first
        // m whose cell is small, then refine downward.
        let mut m = start_m.clamp(1, max_m);
        let mut small_m: Option<usize> = None;
        let mut large_m: usize = 0; // largest m known to have a big cell
        loop {
            let c = cell(m);
            if c <= pivot {
                small_m = Some(m);
                break;
            }
            large_m = large_m.max(m);
            if m == max_m {
                break;
            }
            m = (m * 2).min(max_m);
        }
        let mut hi = small_m?;
        // Binary search in (large_m, hi] for the smallest small-cell m.
        let mut lo = large_m;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if cell(mid) <= pivot {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let final_count = cell(hi);
        if final_count == 0 {
            // The chosen cell is empty; use the smallest non-empty cell seen.
            return Some((pow2(lo as u32), hi));
        }
        Some(((final_count as u128).saturating_mul(pow2(hi as u32)), hi))
    }
}

fn pow2(exp: u32) -> u128 {
    if exp >= 128 {
        u128::MAX
    } else {
        1u128 << exp
    }
}

/// A random XOR over the projection set: each variable included with
/// probability 1/2, random parity.
fn random_xor(projection: &[Var], rng: &mut ChaCha8Rng) -> XorConstraint {
    let vars: Vec<Var> = projection
        .iter()
        .copied()
        .filter(|_| rng.gen_bool(0.5))
        .collect();
    XorConstraint::new(vars, rng.gen_bool(0.5))
}

/// Counts projected solutions up to `limit + 1` (so a return value of
/// `limit + 1` means "more than limit").
fn bounded_count(cnf: &Cnf, projection: &[Var], limit: usize) -> usize {
    enumerate_projected(
        cnf,
        projection,
        &EnumerateConfig {
            max_solutions: limit + 1,
        },
    )
    .len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_count;
    use satkit::cnf::Lit;

    fn assert_within_factor(estimate: u128, exact: u128, factor: f64) {
        let e = estimate as f64;
        let x = exact as f64;
        assert!(
            e <= x * factor && e >= x / factor,
            "estimate {estimate} not within {factor}x of exact {exact}"
        );
    }

    #[test]
    fn pivot_and_rounds_are_sane() {
        let cfg = ApproxConfig::default();
        assert!(cfg.pivot() >= 20);
        assert!(cfg.rounds() >= 3);
        assert_eq!(cfg.rounds() % 2, 1);
    }

    #[test]
    fn small_formulas_are_counted_exactly() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        let approx = ApproxCounter::default();
        assert_eq!(approx.count(&cnf), 6);
    }

    #[test]
    fn unsat_counts_zero() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(vec![Lit::pos(0)]);
        cnf.add_clause(vec![Lit::neg(0)]);
        assert_eq!(ApproxCounter::default().count(&cnf), 0);
    }

    #[test]
    fn free_space_estimate_close_to_exact() {
        // 12 unconstrained variables: 4096 projected models.
        let cnf = Cnf::new(12);
        let approx = ApproxCounter::default();
        assert_within_factor(approx.count(&cnf), 4096, 1.9);
    }

    #[test]
    fn random_cnf_estimates_close_to_brute_force() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
        for round in 0..5 {
            let n = 12usize;
            let m = rng.gen_range(2..=6usize);
            let mut cnf = Cnf::new(n);
            for _ in 0..m {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = rng.gen_range(0..n) as u32;
                    c.push(if rng.gen_bool(0.5) {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    });
                }
                cnf.add_clause(c);
            }
            let exact = brute_force_count(&cnf);
            if exact == 0 {
                continue;
            }
            let approx = ApproxCounter::new(ApproxConfig {
                seed: round,
                ..ApproxConfig::default()
            });
            assert_within_factor(approx.count(&cnf), exact, 2.0);
        }
    }

    #[test]
    fn property_estimate_matches_exact_counter() {
        use crate::exact::ExactCounter;
        use relspec::properties::Property;
        use relspec::translate::{translate_to_cnf, TranslateOptions};
        // Antisymmetric at scope 3 has 216 solutions in a 512-element space.
        let gt = translate_to_cnf(&Property::Antisymmetric.spec(), TranslateOptions::new(3));
        let cnf = gt.cnf_positive();
        let exact = ExactCounter::new().count(&cnf).unwrap();
        assert_eq!(exact, 216);
        let approx = ApproxCounter::default().count(&cnf);
        assert_within_factor(approx, exact, 1.8);
    }
}
