//! Brute-force projected model counting, used as a test oracle.
//!
//! Iterates over every assignment of the projection variables and asks the
//! CDCL solver whether it can be extended to a full model. Exponential in the
//! projection size, so only suitable for tiny formulas — which is exactly
//! what a counting oracle for tests needs to be: independent of the clever
//! counters it validates.

use satkit::cnf::{Cnf, Lit};
use satkit::solver::Solver;

/// Counts, by exhaustive enumeration of the projection assignments, the
/// number of assignments extendable to a model of `cnf`.
///
/// # Panics
///
/// Panics if the projection set has more than 24 variables (the brute-force
/// oracle is not meant for anything larger).
pub fn brute_force_count(cnf: &Cnf) -> u128 {
    let proj = cnf.effective_projection();
    assert!(
        proj.len() <= 24,
        "brute-force counting limited to 24 projection variables, got {}",
        proj.len()
    );
    let mut solver = Solver::from_cnf(cnf);
    let mut count: u128 = 0;
    for bits in 0u64..(1u64 << proj.len()) {
        let assumptions: Vec<Lit> = proj
            .iter()
            .enumerate()
            .map(|(k, v)| Lit::from_var(*v, bits >> k & 1 == 1))
            .collect();
        if solver.solve_with_assumptions(&assumptions).is_sat() {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use satkit::cnf::Var;

    #[test]
    fn counts_free_variables() {
        let cnf = Cnf::new(3);
        assert_eq!(brute_force_count(&cnf), 8);
    }

    #[test]
    fn counts_simple_clause() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        assert_eq!(brute_force_count(&cnf), 3);
    }

    #[test]
    fn counts_projected() {
        // x0 <-> x2 with projection {x0, x1}: every (x0, x1) extends.
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::neg(0), Lit::pos(2)]);
        cnf.add_clause(vec![Lit::pos(0), Lit::neg(2)]);
        cnf.set_projection(vec![Var(0), Var(1)]);
        assert_eq!(brute_force_count(&cnf), 4);
    }

    #[test]
    fn unsat_counts_zero() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(vec![Lit::pos(0)]);
        cnf.add_clause(vec![Lit::neg(0)]);
        assert_eq!(brute_force_count(&cnf), 0);
    }
}
