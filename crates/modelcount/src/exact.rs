//! Exact projected model counting.
//!
//! This plays the role ProjMC plays in the MCML paper: given a CNF formula
//! and a projection (independent-support) variable set, compute the exact
//! number of assignments to the projection variables that can be extended to
//! a model of the formula.
//!
//! The algorithm is the classic #SAT search specialized to projected
//! counting:
//!
//! 1. unit-propagate the residual formula; projection variables whose clauses
//!    all became satisfied without the variable being fixed are free and
//!    contribute a factor of 2 each;
//! 2. split the residual clauses into connected components (variables are
//!    connected when they co-occur in a clause) and multiply the component
//!    counts, caching each component's count;
//! 3. inside a component, branch only on *projection* variables; once a
//!    component contains no projection variable it contributes 1 or 0
//!    depending on plain satisfiability (decided by the CDCL solver).
//!
//! Counts are exact `u128` values, sufficient for projection sets up to 127
//! variables (the reproduction's scopes go up to 11 atoms = 121 variables).

use satkit::cnf::{Cnf, Lit};
use satkit::solver::Solver;
use std::collections::{HashMap, HashSet};

/// Statistics of an exact counting run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactStats {
    /// Number of search nodes explored (branching decisions).
    pub nodes: u64,
    /// Number of component cache hits.
    pub cache_hits: u64,
    /// Number of SAT-solver calls for projection-free components.
    pub sat_calls: u64,
}

/// Exact projected model counter.
#[derive(Debug, Clone)]
pub struct ExactCounter {
    /// Maximum number of search nodes before giving up (`u64::MAX` = never).
    max_nodes: u64,
}

impl Default for ExactCounter {
    fn default() -> Self {
        ExactCounter::new()
    }
}

/// A residual formula: active clauses over not-yet-assigned variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Residual {
    clauses: Vec<Vec<Lit>>,
}

impl Residual {
    fn vars(&self) -> HashSet<u32> {
        self.clauses.iter().flatten().map(|l| l.var().0).collect()
    }
}

impl ExactCounter {
    /// A counter with no node budget.
    pub fn new() -> Self {
        ExactCounter {
            max_nodes: u64::MAX,
        }
    }

    /// A counter that aborts after exploring `max_nodes` search nodes.
    pub fn with_node_budget(max_nodes: u64) -> Self {
        ExactCounter { max_nodes }
    }

    /// Counts the formula's models projected onto its effective projection
    /// set. Returns `None` if the node budget is exhausted.
    pub fn count(&self, cnf: &Cnf) -> Option<u128> {
        self.count_with_stats(cnf).map(|(c, _)| c)
    }

    /// Counts and also reports search statistics.
    pub fn count_with_stats(&self, cnf: &Cnf) -> Option<(u128, ExactStats)> {
        self.try_count(cnf).ok()
    }

    /// Counts, reporting search statistics in both outcomes: `Ok` with the
    /// count on success, `Err` with the statistics at the point the node
    /// budget ran out.
    pub fn try_count(&self, cnf: &Cnf) -> Result<(u128, ExactStats), ExactStats> {
        let projection: HashSet<u32> = cnf.effective_projection().iter().map(|v| v.0).collect();

        // Normalize clauses; tautological clauses are dropped.
        let mut clauses: Vec<Vec<Lit>> = Vec::with_capacity(cnf.num_clauses());
        for c in cnf.clauses() {
            match c.normalized() {
                None => continue,
                Some(n) => {
                    if n.is_empty() {
                        return Ok((0, ExactStats::default()));
                    }
                    clauses.push(n.lits().to_vec());
                }
            }
        }
        let residual = Residual { clauses };

        // Projection variables never mentioned by the formula are free.
        let mentioned = residual.vars();
        let never_mentioned = projection.iter().filter(|v| !mentioned.contains(v)).count() as u32;
        let scope: HashSet<u32> = projection
            .iter()
            .copied()
            .filter(|v| mentioned.contains(v))
            .collect();

        let mut ctx = CountCtx {
            projection,
            cache: HashMap::new(),
            stats: ExactStats::default(),
            max_nodes: self.max_nodes,
            exhausted: false,
        };
        let count = ctx.count_residual(residual, &scope);
        if ctx.exhausted {
            Err(ctx.stats)
        } else {
            Ok((count.saturating_mul(pow2(never_mentioned)), ctx.stats))
        }
    }
}

fn pow2(exp: u32) -> u128 {
    if exp >= 128 {
        u128::MAX
    } else {
        1u128 << exp
    }
}

struct CountCtx {
    projection: HashSet<u32>,
    cache: HashMap<Residual, u128>,
    stats: ExactStats,
    max_nodes: u64,
    exhausted: bool,
}

impl CountCtx {
    /// Counts assignments to the projection variables in `scope` that can be
    /// extended to models of `residual`. Every variable of `scope` occurs in
    /// `residual` (callers maintain this invariant).
    fn count_residual(&mut self, residual: Residual, scope: &HashSet<u32>) -> u128 {
        if self.exhausted {
            return 0;
        }
        // Unit propagation, remembering which scope variables got fixed.
        let (residual, fixed) = match propagate(residual) {
            None => return 0,
            Some(r) => r,
        };
        let remaining_vars = residual.vars();
        // Scope variables that neither got fixed nor still occur are free.
        let free = scope
            .iter()
            .filter(|v| !fixed.contains(v) && !remaining_vars.contains(v))
            .count() as u32;
        let factor = pow2(free);

        if residual.clauses.is_empty() {
            return factor;
        }

        // Component decomposition; each component's scope is the projection
        // variables occurring in it.
        let components = split_components(&residual);
        let mut total: u128 = factor;
        for comp in components {
            let c = self.count_component(comp);
            if c == 0 {
                return 0;
            }
            total = total.saturating_mul(c);
        }
        total
    }

    fn count_component(&mut self, comp: Residual) -> u128 {
        if let Some(&c) = self.cache.get(&comp) {
            self.stats.cache_hits += 1;
            return c;
        }
        // Pick the projection variable with the most occurrences.
        let mut occurrences: HashMap<u32, usize> = HashMap::new();
        for lit in comp.clauses.iter().flatten() {
            let v = lit.var().0;
            if self.projection.contains(&v) {
                *occurrences.entry(v).or_default() += 1;
            }
        }
        let comp_scope: HashSet<u32> = occurrences.keys().copied().collect();
        let branch_var = occurrences
            .into_iter()
            .max_by_key(|&(v, count)| (count, std::cmp::Reverse(v)))
            .map(|(v, _)| v);

        let result = match branch_var {
            None => {
                // No projection variable left: the component contributes 1 if
                // satisfiable, 0 otherwise.
                self.stats.sat_calls += 1;
                u128::from(is_satisfiable(&comp))
            }
            Some(v) => {
                self.stats.nodes += 1;
                if self.stats.nodes > self.max_nodes {
                    self.exhausted = true;
                    return 0;
                }
                let mut sub_scope = comp_scope;
                sub_scope.remove(&v);
                let mut total: u128 = 0;
                for lit in [Lit::pos(v), Lit::neg(v)] {
                    if let Some(r) = assign(&comp, lit) {
                        total = total.saturating_add(self.count_residual(r, &sub_scope));
                    }
                }
                total
            }
        };
        self.cache.insert(comp, result);
        result
    }
}

/// Asserts a literal in the residual: drops satisfied clauses, removes the
/// falsified literal from others. Returns `None` on an empty clause.
fn assign(residual: &Residual, lit: Lit) -> Option<Residual> {
    let mut clauses = Vec::with_capacity(residual.clauses.len());
    for c in &residual.clauses {
        if c.contains(&lit) {
            continue;
        }
        let filtered: Vec<Lit> = c.iter().copied().filter(|&l| l != !lit).collect();
        if filtered.is_empty() {
            return None;
        }
        clauses.push(filtered);
    }
    Some(Residual { clauses })
}

/// Exhaustive unit propagation; returns the propagated residual and the set
/// of variables that were fixed, or `None` on conflict.
fn propagate(mut residual: Residual) -> Option<(Residual, HashSet<u32>)> {
    let mut fixed = HashSet::new();
    loop {
        let unit = residual.clauses.iter().find(|c| c.len() == 1).map(|c| c[0]);
        match unit {
            None => return Some((residual, fixed)),
            Some(l) => {
                fixed.insert(l.var().0);
                residual = assign(&residual, l)?;
            }
        }
    }
}

/// Splits the residual into connected components of the variable-interaction
/// graph.
fn split_components(residual: &Residual) -> Vec<Residual> {
    let mut parent: HashMap<u32, u32> = HashMap::new();

    fn find(parent: &mut HashMap<u32, u32>, v: u32) -> u32 {
        let p = *parent.entry(v).or_insert(v);
        if p == v {
            v
        } else {
            let root = find(parent, p);
            parent.insert(v, root);
            root
        }
    }

    for c in &residual.clauses {
        let first = c[0].var().0;
        for l in &c[1..] {
            let (a, b) = (find(&mut parent, first), find(&mut parent, l.var().0));
            if a != b {
                parent.insert(a, b);
            }
        }
        find(&mut parent, first);
    }

    let mut groups: HashMap<u32, Vec<Vec<Lit>>> = HashMap::new();
    for c in &residual.clauses {
        let root = find(&mut parent, c[0].var().0);
        groups.entry(root).or_default().push(c.clone());
    }
    let mut comps: Vec<Residual> = groups
        .into_values()
        .map(|mut clauses| {
            clauses.sort();
            Residual { clauses }
        })
        .collect();
    comps.sort_by_key(|c| c.clauses.len());
    comps
}

fn is_satisfiable(comp: &Residual) -> bool {
    // Build a compact CNF over just the variables of this component.
    let max_var = comp
        .clauses
        .iter()
        .flatten()
        .map(|l| l.var().index())
        .max()
        .unwrap_or(0);
    let mut cnf = Cnf::new(max_var + 1);
    for c in &comp.clauses {
        cnf.add_clause(c.clone());
    }
    Solver::from_cnf(&cnf).solve().is_sat()
}

/// Counts models of `cnf` projected onto its effective projection set.
///
/// Convenience free function equivalent to [`ExactCounter::count`].
pub fn count_projected_exact(counter: &ExactCounter, cnf: &Cnf) -> Option<u128> {
    counter.count(cnf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_count;
    use satkit::cnf::{Cnf, Lit, Var};

    fn count(cnf: &Cnf) -> u128 {
        ExactCounter::new().count(cnf).expect("no budget set")
    }

    #[test]
    fn empty_formula_counts_all_assignments() {
        let cnf = Cnf::new(5);
        assert_eq!(count(&cnf), 32);
    }

    #[test]
    fn single_clause() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        // 3 models of the clause times 2 for the free variable.
        assert_eq!(count(&cnf), 6);
    }

    #[test]
    fn unit_then_freed_variable() {
        // [x0] and [x0 | x1]: propagation fixes x0 and frees x1 -> count 2.
        let mut cnf = Cnf::new(2);
        cnf.add_clause(vec![Lit::pos(0)]);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        assert_eq!(count(&cnf), 2);
    }

    #[test]
    fn unsat_counts_zero() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(vec![Lit::pos(0)]);
        cnf.add_clause(vec![Lit::neg(0)]);
        assert_eq!(count(&cnf), 0);
    }

    #[test]
    fn projected_count_ignores_auxiliary_vars() {
        // x2 <-> (x0 & x1), projection {x0, x1}: all 4 assignments extend.
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::neg(2), Lit::pos(0)]);
        cnf.add_clause(vec![Lit::neg(2), Lit::pos(1)]);
        cnf.add_clause(vec![Lit::pos(2), Lit::neg(0), Lit::neg(1)]);
        cnf.set_projection(vec![Var(0), Var(1)]);
        assert_eq!(count(&cnf), 4);
    }

    #[test]
    fn projected_count_with_assertion() {
        // Same defining clauses but assert x2: only (1,1) remains.
        let mut cnf = Cnf::new(3);
        cnf.add_clause(vec![Lit::neg(2), Lit::pos(0)]);
        cnf.add_clause(vec![Lit::neg(2), Lit::pos(1)]);
        cnf.add_clause(vec![Lit::pos(2), Lit::neg(0), Lit::neg(1)]);
        cnf.add_clause(vec![Lit::pos(2)]);
        cnf.set_projection(vec![Var(0), Var(1)]);
        assert_eq!(count(&cnf), 1);
    }

    #[test]
    fn component_decomposition_multiplies() {
        // Two independent constraints: (x0 | x1) and (x2 | x3): 3 * 3 = 9.
        let mut cnf = Cnf::new(4);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        cnf.add_clause(vec![Lit::pos(2), Lit::pos(3)]);
        assert_eq!(count(&cnf), 9);
    }

    #[test]
    fn agrees_with_brute_force_on_random_cnfs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(23);
        for round in 0..60 {
            let n = rng.gen_range(3..=9usize);
            let m = rng.gen_range(1..=20usize);
            let mut cnf = Cnf::new(n);
            for _ in 0..m {
                let len = rng.gen_range(1..=3usize);
                let mut c = Vec::new();
                for _ in 0..len {
                    let v = rng.gen_range(0..n) as u32;
                    c.push(if rng.gen_bool(0.5) {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    });
                }
                cnf.add_clause(c);
            }
            assert_eq!(
                count(&cnf),
                brute_force_count(&cnf),
                "round {round}, cnf {cnf}"
            );
        }
    }

    #[test]
    fn agrees_with_brute_force_on_projected_random_cnfs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(29);
        for round in 0..50 {
            let n = rng.gen_range(4..=9usize);
            let proj_size = rng.gen_range(2..=n);
            let m = rng.gen_range(1..=18usize);
            let mut cnf = Cnf::new(n);
            for _ in 0..m {
                let len = rng.gen_range(1..=3usize);
                let mut c = Vec::new();
                for _ in 0..len {
                    let v = rng.gen_range(0..n) as u32;
                    c.push(if rng.gen_bool(0.5) {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    });
                }
                cnf.add_clause(c);
            }
            cnf.set_projection((0..proj_size as u32).map(Var).collect());
            assert_eq!(
                count(&cnf),
                brute_force_count(&cnf),
                "round {round}, projection {proj_size}, cnf {cnf}"
            );
        }
    }

    #[test]
    fn node_budget_aborts() {
        // A formula with a large search space and a tiny budget.
        let mut cnf = Cnf::new(20);
        for i in 0..19u32 {
            cnf.add_clause(vec![Lit::pos(i), Lit::pos(i + 1)]);
        }
        let counter = ExactCounter::with_node_budget(3);
        assert_eq!(counter.count(&cnf), None);
    }

    #[test]
    fn property_counts_scope3_match_closed_forms() {
        use relspec::properties::Property;
        use relspec::translate::{translate_to_cnf, TranslateOptions};
        let expected = [
            (Property::Reflexive, 64u128),
            (Property::Irreflexive, 64),
            (Property::Function, 27),
            (Property::Equivalence, 5),
            (Property::TotalOrder, 6),
            (Property::Transitive, 171),
        ];
        for (p, want) in expected {
            let gt = translate_to_cnf(&p.spec(), TranslateOptions::new(3));
            let got = count(&gt.cnf_positive());
            assert_eq!(got, want, "property {p}");
            // Complement check: |space| - positives.
            let got_neg = count(&gt.cnf_negative());
            assert_eq!(got_neg, 512 - want, "negated property {p}");
        }
    }

    #[test]
    fn stats_report_activity() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause(vec![Lit::pos(0), Lit::pos(1)]);
        cnf.add_clause(vec![Lit::pos(2), Lit::pos(3)]);
        let (c, stats) = ExactCounter::new().count_with_stats(&cnf).unwrap();
        assert_eq!(c, 9);
        assert!(stats.nodes > 0);
    }
}
