//! Hermetic stand-in for the subset of `criterion` this workspace uses.
//!
//! Implements wall-clock benchmarking with warm-up, fixed sample counts and
//! a plain-text mean/min/max report — no statistical analysis, plots or
//! baseline persistence. The macro and builder surface matches upstream so
//! `criterion_group!`/`criterion_main!`-style bench sources compile
//! unchanged against either implementation.
//!
//! **Shim-only extensions** (no upstream equivalent): the in-memory
//! [`BenchRecord`] log ([`recorded_benches`]), [`json_output_path`] and
//! [`smoke_mode`] — the hooks behind the counting bench's `--json` report
//! (`BENCH_counting.json`). A bench that uses them (and a hand-written
//! `main`, as `benches/counting.rs` does) trades drop-in upstream
//! compatibility for machine-readable output; upstream criterion covers
//! the same need natively with `--save-baseline`/`critcmp`, so a swap to
//! the real crate would port the report writer to those instead.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The recorded outcome of one benchmark, kept for machine-readable
/// reports (`--json` mode on the bench binaries).
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full benchmark label (`group/function/parameter`).
    pub label: String,
    /// Mean wall-clock time per sample, in nanoseconds.
    pub mean_ns: u128,
    /// Fastest sample, in nanoseconds.
    pub min_ns: u128,
    /// Slowest sample, in nanoseconds.
    pub max_ns: u128,
    /// Number of timed samples (1 in `--test` smoke mode).
    pub samples: usize,
}

/// Every benchmark run in this process (upstream criterion persists these
/// to `target/criterion`; the shim keeps them in memory for the binary's
/// own report writer).
static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

fn record(label: &str, samples: &[Duration]) {
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    RECORDS
        .lock()
        .expect("bench records poisoned")
        .push(BenchRecord {
            label: label.to_string(),
            mean_ns: mean.as_nanos(),
            min_ns: min.as_nanos(),
            max_ns: max.as_nanos(),
            samples: samples.len(),
        });
}

/// A snapshot of every benchmark recorded so far, in execution order.
pub fn recorded_benches() -> Vec<BenchRecord> {
    RECORDS.lock().expect("bench records poisoned").clone()
}

/// The output path requested with `--json[=PATH]` on the bench command
/// line (`cargo bench -- --json`), or `None` when no JSON report was
/// requested. A bare `--json` resolves to `default`.
pub fn json_output_path(default: &str) -> Option<String> {
    for arg in std::env::args() {
        if arg == "--json" {
            return Some(default.to_string());
        }
        if let Some(path) = arg.strip_prefix("--json=") {
            return Some(path.to_string());
        }
    }
    None
}

/// Whether the benches run in `--test` smoke mode (exposed so report
/// writers can tag single-iteration numbers as non-representative).
pub fn smoke_mode() -> bool {
    test_mode()
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id naming only the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Measurement settings shared by [`Criterion`] and [`BenchmarkGroup`].
#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

/// The benchmark manager (upstream's entry point).
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Sets the target measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        let settings = self.settings;
        BenchmarkGroup {
            _criterion: self,
            name,
            settings,
        }
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.settings, &mut f);
        self
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.settings, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.settings, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group (report flushing is a no-op in the shim).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    settings: Settings,
    samples: Vec<Duration>,
}

/// Whether the benches run in smoke-test mode (`cargo bench -- --test`,
/// mirroring upstream Criterion): every routine executes exactly once,
/// untimed, so CI can verify benches still run without paying for warm-up
/// and sampling.
fn test_mode() -> bool {
    static TEST_MODE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *TEST_MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

impl Bencher {
    /// Times `routine`: a warm-up phase followed by `sample_size` timed
    /// samples (bounded by the measurement time). In `--test` mode the
    /// routine runs exactly once instead.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if test_mode() {
            let start = Instant::now();
            black_box(routine());
            self.samples.clear();
            self.samples.push(start.elapsed());
            return;
        }
        let warm_up_end = Instant::now() + self.settings.warm_up_time;
        let mut warm_up_iters = 0u64;
        while Instant::now() < warm_up_end {
            black_box(routine());
            warm_up_iters += 1;
        }
        let deadline = Instant::now() + self.settings.measurement_time;
        self.samples.clear();
        for i in 0..self.settings.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            // Always record at least one sample; then respect the deadline.
            if i > 0 && Instant::now() > deadline {
                break;
            }
        }
        let _ = warm_up_iters;
    }
}

fn run_one(label: &str, settings: Settings, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        settings,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {label}: no samples (routine never called iter)");
        return;
    }
    record(label, &bencher.samples);
    if test_mode() {
        println!("  {label}: ok ({:?}, --test smoke run)", bencher.samples[0]);
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    println!(
        "  {label}: mean {mean:?} (min {min:?}, max {max:?}, {} samples)",
        bencher.samples.len()
    );
}

/// Declares a set of benchmark targets, optionally with a configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+);
    };
}

/// Declares the benchmark executable's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; the shim ignores them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10))
    }

    #[test]
    fn group_benchmarks_run() {
        let mut c = quick();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function(BenchmarkId::from_parameter("id"), |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn standalone_bench_function_runs() {
        quick().bench_function("add", |b| b.iter(|| black_box(2) + 2));
    }

    #[test]
    fn benchmarks_are_recorded_for_json_reports() {
        quick().bench_function("recorded_smoke", |b| b.iter(|| black_box(1) + 1));
        let records = recorded_benches();
        let rec = records
            .iter()
            .find(|r| r.label == "recorded_smoke")
            .expect("bench must be recorded");
        assert!(rec.samples >= 1);
        assert!(rec.min_ns <= rec.mean_ns && rec.mean_ns <= rec.max_ns.max(rec.mean_ns));
    }

    #[test]
    fn json_path_defaults_when_flag_absent() {
        // The test harness was not launched with --json.
        assert_eq!(json_output_path("BENCH_x.json"), None);
    }
}
