//! Hermetic stand-in for `rand_chacha`: a deterministic, seedable generator
//! under the [`ChaCha8Rng`] name so call sites match the upstream API.
//!
//! The backing algorithm is xoshiro256** seeded through SplitMix64 — a
//! high-quality non-cryptographic generator. Streams therefore differ from
//! upstream ChaCha8; nothing in this workspace depends on the exact stream,
//! only on per-seed determinism.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable RNG (xoshiro256** behind the upstream name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        ChaCha8Rng { s }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn roughly_uniform_bits() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads: {heads}");
    }
}
