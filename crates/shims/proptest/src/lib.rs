//! Hermetic stand-in for the subset of `proptest` this workspace uses.
//!
//! Implements randomized property testing without shrinking: the
//! [`proptest!`] macro runs each test body for `ProptestConfig::cases`
//! generated inputs, reporting the failing case's values on panic. Supported
//! strategy surface: integer ranges, `any::<bool>()`, 2-tuples,
//! `collection::vec`, and `prop_map`; assertions via [`prop_assert!`],
//! [`prop_assert_eq!`] and [`prop_assume!`].

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving test-case generation (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator derived from a seed (test name hash + case index).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

/// Error signalled by `prop_assert*` inside a generated test case.
#[derive(Debug)]
pub struct TestCaseError {
    /// Human-readable failure message.
    pub message: String,
}

impl TestCaseError {
    /// A failed-assertion error.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value-generation strategy (no shrinking in this shim).
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return (start as i128 + rng.next_u64() as i128) as $t;
                }
                (start as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Marker types and the [`any`] entry point.
pub mod arbitrary {
    use super::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy generating arbitrary values of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::Any<T> {
    arbitrary::Any(std::marker::PhantomData)
}

/// Collection strategies (the role of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors with the given element strategy and size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Fails the current generated case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current generated case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current generated case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current generated case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn name(x in strategy_expr, y in strategy_expr) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    ($cfg:expr; ) => {};
    ($cfg:expr;
     $(#[$meta:meta])+
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            // Seed derived from the test name so failures reproduce exactly.
            let seed = {
                let name = concat!(module_path!(), "::", stringify!($name));
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in name.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                h
            };
            $(let $arg = $strat;)+
            for case in 0..config.cases {
                let mut rng =
                    $crate::TestRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(0x9E37_79B9));
                $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)+
                let __inputs =
                    format!(concat!($("\n  ", stringify!($arg), " = {:?}"),+), $(&$arg),+);
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs:{}",
                        case + 1,
                        config.cases,
                        e,
                        __inputs
                    );
                }
            }
        }
        $crate::__proptest_each! { $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 0u64..100) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 100);
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec(any::<bool>(), 2..=5)) {
            prop_assert!((2..=5).contains(&v.len()));
        }

        #[test]
        fn prop_map_applies(v in prop::collection::vec(0u32..4, 3).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 3);
        }

        #[test]
        fn assume_skips(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
