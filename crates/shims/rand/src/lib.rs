//! Hermetic stand-in for the subset of the `rand` crate API this workspace
//! uses: [`RngCore`], [`Rng::gen_range`]/[`Rng::gen_bool`], [`SeedableRng`]
//! and [`seq::SliceRandom::shuffle`].
//!
//! The build environment has no access to crates.io, so this shim implements
//! the same call signatures on `std` only. Generators are deterministic per
//! seed (the repo relies on that for reproducible experiments) but do not
//! reproduce upstream `rand` streams.

use std::ops::{Range, RangeInclusive};

/// Core infallible random-number generation, as in upstream `rand`.
pub trait RngCore {
    /// The next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive; integer or
    /// float element types).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding support, as in upstream `rand`.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 significant bits, the float64 mantissa width.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can produce uniform samples (the role of upstream's
/// `SampleRange`/`UniformSampler`).
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `u64` below `bound` via Lemire-style rejection (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Rejection zone keeps the distribution exactly uniform.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return (start as i128 + rng.next_u64() as i128) as $t;
                }
                (start as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Sequence-related sampling (the role of `rand::seq`).
pub mod seq {
    use super::{uniform_below, Rng};

    /// Slice extension trait providing an in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice uniformly in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Step(u64);
    impl RngCore for Step {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Step(1);
        for _ in 0..2000 {
            let v = rng.gen_range(3..9usize);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Step(7);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Step(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Step(1);
        let _ = rng.gen_range(5..5usize);
    }
}
