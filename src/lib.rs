//! Facade crate for the MCML (PLDI 2020) reproduction workspace.
//!
//! Re-exports the member crates so the runnable examples in `examples/` and
//! the cross-crate integration tests in `tests/` can use a single dependency.
//! See the individual crates for the substance:
//!
//! * [`satkit`] — CNF, Tseitin encoding, CDCL SAT solver, enumeration;
//! * [`relspec`] — the Alloy-like relational logic, its evaluator, bounded
//!   CNF translation, the 16 subject properties, symmetry breaking;
//! * [`modelcount`] — exact and approximate projected model counters;
//! * [`mlkit`] — the six ML model families, datasets and metrics;
//! * [`datagen`] — the positive/negative sample generation pipeline;
//! * [`mcml`] — Tree2CNF, AccMC, DiffMC and the experiment framework.

pub use datagen;
pub use mcml;
pub use mlkit;
pub use modelcount;
pub use relspec;
pub use satkit;
