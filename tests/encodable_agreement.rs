//! Exhaustive agreement tests for the `CnfEncodable` model families: at
//! scopes 2–3 the whole input space (2^(n²) adjacency matrices) is small
//! enough to enumerate, so the AccMC counts produced through the CNF
//! encodings can be checked bit-for-bit against `Classifier::predict`.

use mcml::accmc::{AccMc, SpaceCounts};
use mcml::backend::CounterBackend;
use mcml::counter::{CachedCounter, ModelCounter};
use mcml::encode::CnfEncodable;
use mcml::tree2cnf::TreeLabel;
use mlkit::adaboost::{AdaBoost, AdaBoostConfig};
use mlkit::data::Dataset;
use mlkit::forest::{ForestConfig, RandomForest};
use mlkit::gbdt::{GbdtConfig, GradientBoosting};
use mlkit::mlp::{Mlp, MlpConfig};
use mlkit::quant::{QuantizedMlp, QuantizedSvm, DEFAULT_QUANT_BITS};
use mlkit::svm::{LinearSvm, SvmConfig};
use mlkit::tree::{DecisionTree, TreeConfig};
use mlkit::Classifier;
use modelcount::exact::ExactCounter;
use relspec::instance::RelInstance;
use relspec::properties::Property;
use relspec::translate::{translate_to_cnf, TranslateOptions};

/// The full labeled space of a property at a scope.
fn labeled_space(property: Property, scope: usize) -> Dataset {
    let mut d = Dataset::new(scope * scope);
    for bits in 0u64..(1 << (scope * scope)) {
        let inst = RelInstance::from_bits(
            scope,
            (0..scope * scope).map(|k| bits >> k & 1 == 1).collect(),
        );
        d.push(inst.to_features(), property.holds(&inst));
    }
    d
}

/// Brute-force whole-space confusion counts from `Classifier::predict`.
fn brute_counts<M: Classifier + ?Sized>(
    property: Property,
    scope: usize,
    model: &M,
) -> SpaceCounts {
    let mut counts = SpaceCounts::default();
    for bits in 0u64..(1 << (scope * scope)) {
        let inst = RelInstance::from_bits(
            scope,
            (0..scope * scope).map(|k| bits >> k & 1 == 1).collect(),
        );
        match (property.holds(&inst), model.predict(&inst.to_features())) {
            (true, true) => counts.tp += 1,
            (false, true) => counts.fp += 1,
            (false, false) => counts.tn += 1,
            (true, false) => counts.fn_ += 1,
        }
    }
    counts
}

/// Asserts that the encoded AccMC counts equal the brute-force counts for
/// the model, at every scope in `scopes`.
fn check_family<M, F>(scopes: &[usize], properties: &[Property], train: F)
where
    M: CnfEncodable + Classifier,
    F: Fn(&Dataset, u64) -> M,
{
    let backend = CounterBackend::exact();
    for &scope in scopes {
        for (i, &property) in properties.iter().enumerate() {
            // Subsampled training keeps the models imperfect so all four
            // counts are exercised.
            let sample = labeled_space(property, scope).subsample(70, i as u64 + 11);
            let model = train(&sample, i as u64);
            let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
            let result = AccMc::new(&backend)
                .evaluate(&gt, &model)
                .expect("scopes match")
                .expect("exact backend has no budget");
            let brute = brute_counts(property, scope, &model);
            assert_eq!(
                result.counts, brute,
                "{property} at scope {scope} (model family mismatch)"
            );
            assert_eq!(result.counts.total(), 1u128 << (scope * scope));
        }
    }
}

const PROPERTIES: [Property; 4] = [
    Property::Reflexive,
    Property::Antisymmetric,
    Property::Function,
    Property::Transitive,
];

#[test]
fn decision_tree_counts_match_predictions_exhaustively() {
    check_family(&[2, 3], &PROPERTIES, |train, _seed| {
        DecisionTree::fit(train, TreeConfig::default())
    });
}

#[test]
fn random_forest_counts_match_predictions_exhaustively() {
    check_family(&[2, 3], &PROPERTIES, |train, seed| {
        RandomForest::fit(
            train,
            ForestConfig {
                num_trees: 7,
                seed,
                ..ForestConfig::default()
            },
        )
    });
}

#[test]
fn even_sized_forest_counts_match_predictions_exhaustively() {
    // Even tree counts exercise the tie-breaking side of the majority
    // threshold (`votes * 2 >= T` accepts an exact tie).
    check_family(&[3], &PROPERTIES[..2], |train, seed| {
        RandomForest::fit(
            train,
            ForestConfig {
                num_trees: 6,
                seed,
                ..ForestConfig::default()
            },
        )
    });
}

#[test]
fn gbdt_counts_match_predictions_exhaustively() {
    check_family(&[2, 3], &PROPERTIES, |train, _seed| {
        GradientBoosting::fit(
            train,
            GbdtConfig {
                num_rounds: 6,
                max_depth: 2,
                ..GbdtConfig::default()
            },
        )
    });
}

#[test]
fn adaboost_counts_match_predictions_exhaustively() {
    check_family(&[2, 3], &PROPERTIES, |train, seed| {
        AdaBoost::fit(
            train,
            AdaBoostConfig {
                num_rounds: 8,
                weak_depth: 2,
                seed,
            },
        )
    });
}

/// Trains the float MLP and returns its calibrated quantization — the
/// model the MLP table rows actually evaluate.
fn quantized_mlp(train: &Dataset, seed: u64) -> QuantizedMlp {
    let float = Mlp::fit(
        train,
        MlpConfig {
            hidden_units: 3,
            epochs: 30,
            seed,
            ..MlpConfig::default()
        },
    );
    QuantizedMlp::from_mlp_calibrated(&float, DEFAULT_QUANT_BITS, train.features())
}

/// Trains the float SVM and returns its integer-weight quantization.
fn quantized_svm(train: &Dataset, seed: u64) -> QuantizedSvm {
    let float = LinearSvm::fit(
        train,
        SvmConfig {
            seed,
            ..SvmConfig::default()
        },
    );
    QuantizedSvm::from_svm(&float, DEFAULT_QUANT_BITS)
}

#[test]
fn quantized_mlp_counts_match_predictions_exhaustively() {
    check_family(&[2, 3], &PROPERTIES, quantized_mlp);
}

#[test]
fn quantized_svm_counts_match_predictions_exhaustively() {
    check_family(&[2, 3], &PROPERTIES, quantized_svm);
}

#[test]
fn quantized_predictions_equal_encoded_semantics_on_every_input() {
    // The quantization-agreement pin: on every one of the 2^(scope²)
    // inputs, the quantized integer prediction must equal the semantics of
    // the compiled encoding — the decision regions contain the input in
    // exactly one cube whose label is the prediction.
    for scope in [2usize, 3] {
        let sample = labeled_space(Property::Function, scope).subsample(70, 7);
        let models: Vec<Box<dyn EncodableClassifier>> = vec![
            Box::new(quantized_mlp(&sample, 7)),
            Box::new(quantized_svm(&sample, 7)),
        ];
        for model in &models {
            let regions = model.as_encodable().decision_regions().expect("in budget");
            for bits in 0u64..(1 << (scope * scope)) {
                let features: Vec<u8> = (0..scope * scope).map(|k| (bits >> k & 1) as u8).collect();
                let holding: Vec<&TreeLabel> = regions
                    .iter()
                    .filter(|region| {
                        region.cube.iter().all(|lit| {
                            let value = features[lit.var().index()] == 1;
                            value == lit.is_positive()
                        })
                    })
                    .map(|region| &region.label)
                    .collect();
                assert_eq!(holding.len(), 1, "input {bits:b} must fall in exactly one cube");
                let predicted = model.as_classifier().predict(&features);
                assert_eq!(
                    *holding[0] == TreeLabel::True,
                    predicted,
                    "scope {scope} input {bits:b}"
                );
            }
        }
    }
}

/// Object-safe pairing of the two sides compared by the
/// quantization-agreement pin.
trait EncodableClassifier {
    fn as_encodable(&self) -> &dyn CnfEncodable;
    fn as_classifier(&self) -> &dyn Classifier;
}

impl<M: CnfEncodable + Classifier> EncodableClassifier for M {
    fn as_encodable(&self) -> &dyn CnfEncodable {
        self
    }
    fn as_classifier(&self) -> &dyn Classifier {
        self
    }
}

#[test]
fn label_regions_partition_the_space_for_every_family() {
    let scope = 3;
    let property = Property::PartialOrder;
    let sample = labeled_space(property, scope).subsample(90, 3);
    let counter = ExactCounter::new();
    let models: Vec<(&str, Box<dyn CnfEncodable>)> = vec![
        (
            "DT",
            Box::new(DecisionTree::fit(&sample, TreeConfig::default())),
        ),
        (
            "RFT",
            Box::new(RandomForest::fit(
                &sample,
                ForestConfig {
                    num_trees: 5,
                    seed: 2,
                    ..ForestConfig::default()
                },
            )),
        ),
        (
            "GBDT",
            Box::new(GradientBoosting::fit(
                &sample,
                GbdtConfig {
                    num_rounds: 6,
                    max_depth: 2,
                    ..GbdtConfig::default()
                },
            )),
        ),
        (
            "ABT",
            Box::new(AdaBoost::fit(
                &sample,
                AdaBoostConfig {
                    num_rounds: 6,
                    weak_depth: 1,
                    seed: 2,
                },
            )),
        ),
        ("MLP", Box::new(quantized_mlp(&sample, 2))),
        ("SVM", Box::new(quantized_svm(&sample, 2))),
    ];
    for (name, model) in &models {
        let t = counter
            .count(&model.label_cnf(TreeLabel::True))
            .expect("no budget");
        let f = counter
            .count(&model.label_cnf(TreeLabel::False))
            .expect("no budget");
        assert_eq!(t + f, 512, "{name}: regions must partition the space");
    }
}

#[test]
fn cached_backend_reports_identical_counts() {
    // The memoizing wrapper must be semantically invisible.
    let property = Property::Function;
    let scope = 3;
    let sample = labeled_space(property, scope).subsample(60, 5);
    let forest = RandomForest::fit(
        &sample,
        ForestConfig {
            num_trees: 5,
            seed: 0,
            ..ForestConfig::default()
        },
    );
    let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
    let plain = CounterBackend::exact();
    let cached = CachedCounter::new(ExactCounter::new());
    let direct = AccMc::new(&plain).evaluate(&gt, &forest).unwrap().unwrap();
    let via_cache_cold = AccMc::new(&cached).evaluate(&gt, &forest).unwrap().unwrap();
    let via_cache_warm = AccMc::new(&cached).evaluate(&gt, &forest).unwrap().unwrap();
    assert_eq!(direct.counts, via_cache_cold.counts);
    assert_eq!(direct.counts, via_cache_warm.counts);
    let stats = cached.stats();
    assert_eq!(stats.misses, 4, "four distinct formulas");
    assert_eq!(stats.hits, 4, "second evaluation fully cached");
    assert_eq!(cached.name(), "cached");
}
