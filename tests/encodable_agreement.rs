//! Exhaustive agreement tests for the `CnfEncodable` model families: at
//! scopes 2–3 the whole input space (2^(n²) adjacency matrices) is small
//! enough to enumerate, so the AccMC counts produced through the CNF
//! encodings can be checked bit-for-bit against `Classifier::predict`.

use mcml::accmc::{AccMc, SpaceCounts};
use mcml::backend::CounterBackend;
use mcml::counter::{CachedCounter, ModelCounter};
use mcml::encode::CnfEncodable;
use mcml::tree2cnf::TreeLabel;
use mlkit::adaboost::{AdaBoost, AdaBoostConfig};
use mlkit::data::Dataset;
use mlkit::forest::{ForestConfig, RandomForest};
use mlkit::gbdt::{GbdtConfig, GradientBoosting};
use mlkit::tree::{DecisionTree, TreeConfig};
use mlkit::Classifier;
use modelcount::exact::ExactCounter;
use relspec::instance::RelInstance;
use relspec::properties::Property;
use relspec::translate::{translate_to_cnf, TranslateOptions};

/// The full labeled space of a property at a scope.
fn labeled_space(property: Property, scope: usize) -> Dataset {
    let mut d = Dataset::new(scope * scope);
    for bits in 0u64..(1 << (scope * scope)) {
        let inst = RelInstance::from_bits(
            scope,
            (0..scope * scope).map(|k| bits >> k & 1 == 1).collect(),
        );
        d.push(inst.to_features(), property.holds(&inst));
    }
    d
}

/// Brute-force whole-space confusion counts from `Classifier::predict`.
fn brute_counts<M: Classifier + ?Sized>(
    property: Property,
    scope: usize,
    model: &M,
) -> SpaceCounts {
    let mut counts = SpaceCounts::default();
    for bits in 0u64..(1 << (scope * scope)) {
        let inst = RelInstance::from_bits(
            scope,
            (0..scope * scope).map(|k| bits >> k & 1 == 1).collect(),
        );
        match (property.holds(&inst), model.predict(&inst.to_features())) {
            (true, true) => counts.tp += 1,
            (false, true) => counts.fp += 1,
            (false, false) => counts.tn += 1,
            (true, false) => counts.fn_ += 1,
        }
    }
    counts
}

/// Asserts that the encoded AccMC counts equal the brute-force counts for
/// the model, at every scope in `scopes`.
fn check_family<M, F>(scopes: &[usize], properties: &[Property], train: F)
where
    M: CnfEncodable + Classifier,
    F: Fn(&Dataset, u64) -> M,
{
    let backend = CounterBackend::exact();
    for &scope in scopes {
        for (i, &property) in properties.iter().enumerate() {
            // Subsampled training keeps the models imperfect so all four
            // counts are exercised.
            let sample = labeled_space(property, scope).subsample(70, i as u64 + 11);
            let model = train(&sample, i as u64);
            let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
            let result = AccMc::new(&backend)
                .evaluate(&gt, &model)
                .expect("scopes match")
                .expect("exact backend has no budget");
            let brute = brute_counts(property, scope, &model);
            assert_eq!(
                result.counts, brute,
                "{property} at scope {scope} (model family mismatch)"
            );
            assert_eq!(result.counts.total(), 1u128 << (scope * scope));
        }
    }
}

const PROPERTIES: [Property; 4] = [
    Property::Reflexive,
    Property::Antisymmetric,
    Property::Function,
    Property::Transitive,
];

#[test]
fn decision_tree_counts_match_predictions_exhaustively() {
    check_family(&[2, 3], &PROPERTIES, |train, _seed| {
        DecisionTree::fit(train, TreeConfig::default())
    });
}

#[test]
fn random_forest_counts_match_predictions_exhaustively() {
    check_family(&[2, 3], &PROPERTIES, |train, seed| {
        RandomForest::fit(
            train,
            ForestConfig {
                num_trees: 7,
                seed,
                ..ForestConfig::default()
            },
        )
    });
}

#[test]
fn even_sized_forest_counts_match_predictions_exhaustively() {
    // Even tree counts exercise the tie-breaking side of the majority
    // threshold (`votes * 2 >= T` accepts an exact tie).
    check_family(&[3], &PROPERTIES[..2], |train, seed| {
        RandomForest::fit(
            train,
            ForestConfig {
                num_trees: 6,
                seed,
                ..ForestConfig::default()
            },
        )
    });
}

#[test]
fn gbdt_counts_match_predictions_exhaustively() {
    check_family(&[2, 3], &PROPERTIES, |train, _seed| {
        GradientBoosting::fit(
            train,
            GbdtConfig {
                num_rounds: 6,
                max_depth: 2,
                ..GbdtConfig::default()
            },
        )
    });
}

#[test]
fn adaboost_counts_match_predictions_exhaustively() {
    check_family(&[2, 3], &PROPERTIES, |train, seed| {
        AdaBoost::fit(
            train,
            AdaBoostConfig {
                num_rounds: 8,
                weak_depth: 2,
                seed,
            },
        )
    });
}

#[test]
fn label_regions_partition_the_space_for_every_family() {
    let scope = 3;
    let property = Property::PartialOrder;
    let sample = labeled_space(property, scope).subsample(90, 3);
    let counter = ExactCounter::new();
    let models: Vec<(&str, Box<dyn CnfEncodable>)> = vec![
        (
            "DT",
            Box::new(DecisionTree::fit(&sample, TreeConfig::default())),
        ),
        (
            "RFT",
            Box::new(RandomForest::fit(
                &sample,
                ForestConfig {
                    num_trees: 5,
                    seed: 2,
                    ..ForestConfig::default()
                },
            )),
        ),
        (
            "GBDT",
            Box::new(GradientBoosting::fit(
                &sample,
                GbdtConfig {
                    num_rounds: 6,
                    max_depth: 2,
                    ..GbdtConfig::default()
                },
            )),
        ),
        (
            "ABT",
            Box::new(AdaBoost::fit(
                &sample,
                AdaBoostConfig {
                    num_rounds: 6,
                    weak_depth: 1,
                    seed: 2,
                },
            )),
        ),
    ];
    for (name, model) in &models {
        let t = counter
            .count(&model.label_cnf(TreeLabel::True))
            .expect("no budget");
        let f = counter
            .count(&model.label_cnf(TreeLabel::False))
            .expect("no budget");
        assert_eq!(t + f, 512, "{name}: regions must partition the space");
    }
}

#[test]
fn cached_backend_reports_identical_counts() {
    // The memoizing wrapper must be semantically invisible.
    let property = Property::Function;
    let scope = 3;
    let sample = labeled_space(property, scope).subsample(60, 5);
    let forest = RandomForest::fit(
        &sample,
        ForestConfig {
            num_trees: 5,
            seed: 0,
            ..ForestConfig::default()
        },
    );
    let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
    let plain = CounterBackend::exact();
    let cached = CachedCounter::new(ExactCounter::new());
    let direct = AccMc::new(&plain).evaluate(&gt, &forest).unwrap().unwrap();
    let via_cache_cold = AccMc::new(&cached).evaluate(&gt, &forest).unwrap().unwrap();
    let via_cache_warm = AccMc::new(&cached).evaluate(&gt, &forest).unwrap().unwrap();
    assert_eq!(direct.counts, via_cache_cold.counts);
    assert_eq!(direct.counts, via_cache_warm.counts);
    let stats = cached.stats();
    assert_eq!(stats.misses, 4, "four distinct formulas");
    assert_eq!(stats.hits, 4, "second evaluation fully cached");
    assert_eq!(cached.name(), "cached");
}
