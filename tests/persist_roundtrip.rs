//! Integration round-trip for the persistent count cache: a cache warmed
//! by a *real* whole-space evaluation is saved, reloaded into a fresh
//! process-alike counter, and must answer the same evaluation without
//! touching its inner counter at all — plus the backend-mismatch guard
//! that keeps an approximate cache from silently seeding an exact run.

use mcml::accmc::{AccMc, CountingEngine};
use mcml::backend::CounterBackend;
use mcml::counter::CachedCounter;
use mcml::persist::{cache_file_name, load_outcomes, save_outcomes};
use mlkit::data::Dataset;
use mlkit::forest::{ForestConfig, RandomForest};
use mlkit::tree::{DecisionTree, TreeConfig};
use relspec::instance::RelInstance;
use relspec::properties::Property;
use relspec::translate::{translate_to_cnf, TranslateOptions};

fn labeled_dataset(property: Property, scope: usize) -> Dataset {
    let mut d = Dataset::new(scope * scope);
    for bits in 0u64..(1 << (scope * scope)) {
        let inst = RelInstance::from_bits(
            scope,
            (0..scope * scope).map(|k| bits >> k & 1 == 1).collect(),
        );
        d.push(inst.to_features(), property.holds(&inst));
    }
    d
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "mcml-roundtrip-{}-{}",
        std::process::id(),
        cache_file_name(name)
    ));
    p
}

/// Warm → save → load → replay. The second counter wraps a zero-budget
/// inner backend, so any count the preload fails to cover would surface as
/// a `BudgetExhausted` outcome (and a missing whole-space result) — equal
/// results plus zero misses prove the whole evaluation was served from the
/// reloaded cache.
#[test]
fn warmed_cache_replays_an_evaluation_across_a_process_boundary() {
    let property = Property::Function;
    let scope = 3;
    let dataset = labeled_dataset(property, scope).subsample(90, 3);
    let tree = DecisionTree::fit(&dataset, TreeConfig::default());
    let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));

    // First "process": evaluate with a generously-budgeted exact backend
    // and persist the warmed cache.
    let path = temp_path("exact");
    let warm = CachedCounter::new(CounterBackend::exact());
    let first = AccMc::new(&warm)
        .evaluate(&gt, &tree)
        .expect("scopes match")
        .expect("no budget");
    let written = save_outcomes(&path, "exact", &warm.snapshot()).expect("save cache");
    assert!(written >= 4, "the four AccMC counts must be persisted");

    // Second "process": a zero-budget inner counter can only answer from
    // the preload.
    let cold = CachedCounter::new(CounterBackend::exact_with_budget(0));
    cold.preload(load_outcomes(&path, "exact").expect("load cache"));
    let second = AccMc::new(&cold)
        .evaluate(&gt, &tree)
        .expect("scopes match")
        .expect("every count preloaded");
    assert_eq!(second.counts, first.counts);
    assert_eq!(second.metrics, first.metrics);
    assert_eq!(
        cold.stats().misses,
        0,
        "the replay must never fall through to the zero-budget counter"
    );

    // Backend mismatch: the same file must never seed a differently-backed
    // run — and the per-backend file names keep them apart on disk too.
    let err = load_outcomes(&path, "approx").expect_err("foreign backend must be rejected");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert_ne!(cache_file_name("exact"), cache_file_name("approx"));
    std::fs::remove_file(&path).ok();
}

/// The compiled engine's conditioned region counts are memoized under
/// cube-aware fingerprints and round-trip the same way — an ensemble
/// evaluation replays entirely from the reloaded cache.
#[test]
fn compiled_engine_region_counts_round_trip() {
    let property = Property::Reflexive;
    let scope = 3;
    let dataset = labeled_dataset(property, scope).subsample(80, 5);
    let forest = RandomForest::fit(
        &dataset,
        ForestConfig {
            num_trees: 3,
            seed: 11,
            ..ForestConfig::default()
        },
    );
    let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));

    let path = temp_path("exact-compiled-engine");
    let warm = CachedCounter::new(CounterBackend::exact());
    let first = AccMc::with_engine(&warm, CountingEngine::Compiled)
        .evaluate(&gt, &forest)
        .expect("scopes match")
        .expect("no budget");
    save_outcomes(&path, "exact", &warm.snapshot()).expect("save cache");

    let cold = CachedCounter::new(CounterBackend::exact_with_budget(0));
    cold.preload(load_outcomes(&path, "exact").expect("load cache"));
    let second = AccMc::with_engine(&cold, CountingEngine::Compiled)
        .evaluate(&gt, &forest)
        .expect("scopes match")
        .expect("every conditioned count preloaded");
    std::fs::remove_file(&path).ok();
    assert_eq!(second.counts, first.counts);
    assert_eq!(cold.stats().misses, 0);
}
