//! Integration round-trip for the persistent count cache: a cache warmed
//! by a *real* whole-space evaluation is saved, reloaded into a fresh
//! process-alike counter, and must answer the same evaluation without
//! touching its inner counter at all — plus the backend-mismatch guard
//! that keeps an approximate cache from silently seeding an exact run.

use mcml::accmc::{AccMc, CountingEngine};
use mcml::artifact::{artifact_file_name, load_artifact, save_artifact, CircuitArtifact};
use mcml::backend::CounterBackend;
use mcml::counter::{CachedCounter, CompiledCounter, ModelCounter};
use mcml::framework::{ExperimentConfig, ModelFamily, Runner};
use mcml::persist::{cache_file_name, load_outcomes, save_outcomes};
use mlkit::data::Dataset;
use mlkit::forest::{ForestConfig, RandomForest};
use mlkit::tree::{DecisionTree, TreeConfig};
use relspec::instance::RelInstance;
use relspec::properties::Property;
use relspec::translate::{translate_to_cnf, TranslateOptions};
use satkit::cnf::Lit;
use satkit::ddnnf::{CompileStats, Ddnnf};
use std::collections::HashMap;

fn labeled_dataset(property: Property, scope: usize) -> Dataset {
    let mut d = Dataset::new(scope * scope);
    for bits in 0u64..(1 << (scope * scope)) {
        let inst = RelInstance::from_bits(
            scope,
            (0..scope * scope).map(|k| bits >> k & 1 == 1).collect(),
        );
        d.push(inst.to_features(), property.holds(&inst));
    }
    d
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "mcml-roundtrip-{}-{}",
        std::process::id(),
        cache_file_name(name)
    ));
    p
}

fn temp_artifact_path(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "mcml-roundtrip-{}-{tag}-{}",
        std::process::id(),
        artifact_file_name("compiled")
    ));
    p
}

/// Warm → save → load → replay. The second counter wraps a zero-budget
/// inner backend, so any count the preload fails to cover would surface as
/// a `BudgetExhausted` outcome (and a missing whole-space result) — equal
/// results plus zero misses prove the whole evaluation was served from the
/// reloaded cache.
#[test]
fn warmed_cache_replays_an_evaluation_across_a_process_boundary() {
    let property = Property::Function;
    let scope = 3;
    let dataset = labeled_dataset(property, scope).subsample(90, 3);
    let tree = DecisionTree::fit(&dataset, TreeConfig::default());
    let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));

    // First "process": evaluate with a generously-budgeted exact backend
    // and persist the warmed cache.
    let path = temp_path("exact");
    let warm = CachedCounter::new(CounterBackend::exact());
    let first = AccMc::new(&warm)
        .evaluate(&gt, &tree)
        .expect("scopes match")
        .expect("no budget");
    let written = save_outcomes(&path, "exact", &warm.snapshot()).expect("save cache");
    assert!(written >= 4, "the four AccMC counts must be persisted");

    // Second "process": a zero-budget inner counter can only answer from
    // the preload.
    let cold = CachedCounter::new(CounterBackend::exact_with_budget(0));
    cold.preload(load_outcomes(&path, "exact").expect("load cache"));
    let second = AccMc::new(&cold)
        .evaluate(&gt, &tree)
        .expect("scopes match")
        .expect("every count preloaded");
    assert_eq!(second.counts, first.counts);
    assert_eq!(second.metrics, first.metrics);
    assert_eq!(
        cold.stats().misses,
        0,
        "the replay must never fall through to the zero-budget counter"
    );

    // Backend mismatch: the same file must never seed a differently-backed
    // run — and the per-backend file names keep them apart on disk too.
    let err = load_outcomes(&path, "approx").expect_err("foreign backend must be rejected");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert_ne!(cache_file_name("exact"), cache_file_name("approx"));
    std::fs::remove_file(&path).ok();
}

/// The compiled engine's conditioned region counts are memoized under
/// cube-aware fingerprints and round-trip the same way — an ensemble
/// evaluation replays entirely from the reloaded cache.
#[test]
fn compiled_engine_region_counts_round_trip() {
    let property = Property::Reflexive;
    let scope = 3;
    let dataset = labeled_dataset(property, scope).subsample(80, 5);
    let forest = RandomForest::fit(
        &dataset,
        ForestConfig {
            num_trees: 3,
            seed: 11,
            ..ForestConfig::default()
        },
    );
    let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));

    let path = temp_path("exact-compiled-engine");
    let warm = CachedCounter::new(CounterBackend::exact());
    let first = AccMc::with_engine(&warm, CountingEngine::Compiled)
        .evaluate(&gt, &forest)
        .expect("scopes match")
        .expect("no budget");
    save_outcomes(&path, "exact", &warm.snapshot()).expect("save cache");

    let cold = CachedCounter::new(CounterBackend::exact_with_budget(0));
    cold.preload(load_outcomes(&path, "exact").expect("load cache"));
    let second = AccMc::with_engine(&cold, CountingEngine::Compiled)
        .evaluate(&gt, &forest)
        .expect("scopes match")
        .expect("every conditioned count preloaded");
    std::fs::remove_file(&path).ok();
    assert_eq!(second.counts, first.counts);
    assert_eq!(cold.stats().misses, 0);
}

/// Circuit artifacts round-trip for **every** model family at scopes 2 and
/// 3: `count_cubes` over a serialized-then-reloaded circuit must equal the
/// fresh-compiled result, region for region, on both the φ and ¬φ sides.
#[test]
fn artifact_round_trips_every_family_across_scopes() {
    let configs: Vec<ExperimentConfig> = [2usize, 3]
        .iter()
        .map(|&scope| ExperimentConfig::table5(Property::Function, scope))
        .collect();
    let runner = Runner::new().families(ModelFamily::all());
    let counter = CompiledCounter::new();
    let artifact = runner
        .build_artifact(&configs, &counter)
        .expect("well-formed batch");
    assert_eq!(
        artifact.covers.len(),
        configs.len() * ModelFamily::all().len(),
        "one cover per (scope, family)"
    );

    let path = temp_artifact_path("families");
    save_artifact(&path, &artifact).expect("save artifact");
    let loaded = load_artifact(&path, "compiled").expect("load artifact");
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.covers, artifact.covers, "region covers must survive");

    let fresh: HashMap<u128, &Ddnnf> = artifact.circuits.iter().map(|(k, c)| (*k, c)).collect();
    let reloaded: HashMap<u128, &Ddnnf> = loaded.circuits.iter().map(|(k, c)| (*k, c)).collect();
    assert_eq!(reloaded.len(), fresh.len());
    for cover in &loaded.covers {
        let unit = format!("{} scope {} {}", cover.property, cover.scope, cover.family);
        let cubes: Vec<&[Lit]> = cover.regions.iter().map(|r| r.cube.as_slice()).collect();
        assert!(!cubes.is_empty(), "{unit}: empty region cover");
        for key in [cover.phi, cover.not_phi] {
            assert_eq!(
                reloaded[&key].count_cubes(&cubes),
                fresh[&key].count_cubes(&cubes),
                "{unit}: conditioned counts drifted across the byte image"
            );
        }
    }
}

/// The acceptance bar for warm starts: after preloading a saved artifact,
/// a full compiled-engine accuracy evaluation must reproduce the original
/// results while performing **zero** d-DNNF compilation decisions — proved
/// by a zero-budget compiler (any fallthrough would lose the whole-space
/// result) and a still-default `CompileStats`.
#[test]
fn preloaded_artifact_serves_accuracy_with_zero_compilation_decisions() {
    let configs = vec![ExperimentConfig::table5(Property::Function, 3)];
    let runner = Runner::new()
        .families(&[ModelFamily::Dt])
        .engine(CountingEngine::Compiled);
    let rows = runner
        .run(&configs, &CounterBackend::compiled())
        .expect("well-formed batch");
    let warm_result = rows[0].whole_space.as_ref().expect("no budget configured");

    let warm = CompiledCounter::new();
    let artifact = runner
        .build_artifact(&configs, &warm)
        .expect("well-formed batch");
    assert!(
        warm.compile_stats().decisions > 0,
        "the warm pass must actually compile something"
    );

    let path = temp_artifact_path("warm-start");
    save_artifact(&path, &artifact).expect("save artifact");
    let loaded = load_artifact(&path, "compiled").expect("load artifact");
    std::fs::remove_file(&path).ok();

    let cold = CompiledCounter::with_decision_budget(0);
    cold.preload_circuits(loaded.circuits);
    assert_eq!(cold.preloaded_len(), 2, "φ and ¬φ circuits preloaded");
    let cold_rows = runner
        .run(&configs, &CounterBackend::Compiled(cold.clone()))
        .expect("well-formed batch");
    let cold_result = cold_rows[0]
        .whole_space
        .as_ref()
        .expect("every circuit preloaded — the zero-budget compiler is never consulted");
    assert_eq!(cold_result.counts, warm_result.counts);
    assert_eq!(cold_result.metrics, warm_result.metrics);
    assert_eq!(
        cold.compile_stats(),
        CompileStats::default(),
        "the warm-started evaluation must perform zero compilation decisions"
    );
}

/// The artifact store's mismatch policy at the file level: a foreign
/// backend, a bumped store version, a truncated file, and a flipped payload
/// byte must all be rejected as `InvalidData` — never misread.
#[test]
fn artifact_store_rejects_foreign_versions_and_corruption() {
    let counter = CompiledCounter::new();
    let gt = translate_to_cnf(&Property::Function.spec(), TranslateOptions::new(2));
    assert!(ModelCounter::count(&counter, &gt.cnf_positive()).is_exact());
    let artifact = CircuitArtifact {
        backend: "compiled".to_string(),
        circuits: counter.snapshot_circuits(),
        covers: Vec::new(),
    };
    let path = temp_artifact_path("tamper");
    save_artifact(&path, &artifact).expect("save artifact");
    let pristine = std::fs::read(&path).expect("read back");

    let expect_invalid = |label: &str| {
        let err = load_artifact(&path, "compiled").expect_err(label);
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{label}");
    };

    // Foreign backend: same file, different expectation.
    let err = load_artifact(&path, "exact").expect_err("foreign backend");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    // Store-version drift: bump the `v2` in the ASCII header line.
    let header_end = pristine.iter().position(|&b| b == b'\n').unwrap();
    let mut bumped = pristine.clone();
    let v = bumped[..header_end]
        .windows(2)
        .position(|w| w == b"v2")
        .expect("versioned header");
    bumped[v + 1] = b'9';
    std::fs::write(&path, &bumped).unwrap();
    expect_invalid("bumped store version");

    // Truncation at several depths.
    for keep in [pristine.len() - 1, pristine.len() / 2, 8] {
        std::fs::write(&path, &pristine[..keep]).unwrap();
        expect_invalid("truncated artifact");
    }

    // A single flipped payload byte trips the checksum.
    let mut flipped = pristine.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x40;
    std::fs::write(&path, &flipped).unwrap();
    expect_invalid("flipped payload byte");

    std::fs::remove_file(&path).ok();
}
