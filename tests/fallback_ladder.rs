//! The graceful-degradation ladder end to end: a batch whose counting
//! budget is too small for even one exact count must still produce a
//! complete table of (ε, δ)-labeled approximate rows under
//! `FallbackPolicy::SymmetryThenApprox` — no `EvalError`s, every row's
//! guarantee column rendering as `A ε≤… δ≤…` — and the degraded numbers
//! must be byte-identical whether one worker thread or eight raced over
//! the cells.

use mcml::accmc::CountingEngine;
use mcml::backend::CounterBackend;
use mcml::fallback::FallbackPolicy;
use mcml::framework::{BatchOutcome, ExperimentConfig, ModelFamily, Runner};
use mcml::report::format_count_guarantee;
use relspec::properties::Property;

/// A backend whose very first count exhausts, under whichever engine
/// `MCML_ENGINE` selects — so every whole-space cell hits the ladder.
fn tiny_budget_backend() -> CounterBackend {
    match CountingEngine::from_env() {
        CountingEngine::Compiled => CounterBackend::compiled_with_budget(1),
        CountingEngine::Classic => CounterBackend::exact_with_budget(1),
    }
}

fn table3_configs() -> Vec<ExperimentConfig> {
    vec![
        ExperimentConfig::table3(Property::Reflexive, 3),
        ExperimentConfig::table3(Property::Function, 3),
        ExperimentConfig::table3(Property::Antisymmetric, 3),
    ]
}

fn run_degraded(threads: usize) -> BatchOutcome {
    Runner::new()
        .threads(threads)
        .families(&[ModelFamily::Dt, ModelFamily::Rft])
        .engine(CountingEngine::from_env())
        .fallback(FallbackPolicy::approx())
        .run_collect(&table3_configs(), &tiny_budget_backend())
        .expect("well-formed configs")
}

#[test]
fn tiny_budget_yields_complete_approx_labeled_rows_instead_of_errors() {
    let outcome = run_degraded(1);
    assert!(
        outcome.errors.is_empty(),
        "the ladder must rescue every exhausted cell: {:?}",
        outcome.errors
    );
    assert_eq!(outcome.rows.len(), 6, "3 properties × 2 families");
    for row in &outcome.rows {
        let ws = row.whole_space.as_ref().unwrap_or_else(|| {
            panic!(
                "{} {}: missing whole-space result",
                row.config.property, row.family
            )
        });
        let approx = ws.approx.unwrap_or_else(|| {
            panic!(
                "{} {}: rescued row must be labeled",
                row.config.property, row.family
            )
        });
        // Aggregation: largest per-count ε, union-bound (summed) δ over
        // however many of the row's counts were rescued, capped at 1.
        assert_eq!(approx.epsilon, 0.4);
        assert!(
            (0.2..=1.0).contains(&approx.delta),
            "union-bound delta out of range: {}",
            approx.delta
        );
        // The report renders the degraded guarantee as an `A` cell.
        let guarantee = format_count_guarantee(Some(ws));
        assert!(
            guarantee.starts_with("A "),
            "{} {}: guarantee cell {guarantee:?}",
            row.config.property,
            row.family
        );
        // Labeled, but not nonsense: the four cells still partition (an
        // estimate of) the full space.
        assert!(ws.counts.total() > 0);
    }
}

/// Rescue seeds derive from the conditioned queries themselves, so the
/// scheduler's completion order must be unobservable: a one-thread and an
/// eight-thread batch must agree on every count bit for bit.
#[test]
fn degraded_tables_are_identical_across_thread_counts() {
    let sequential = run_degraded(1);
    let racing = run_degraded(8);
    assert_eq!(sequential.rows.len(), racing.rows.len());
    assert!(sequential.errors.is_empty() && racing.errors.is_empty());
    for (a, b) in sequential.rows.iter().zip(&racing.rows) {
        assert_eq!(a.config, b.config);
        assert_eq!(a.family, b.family);
        let (wa, wb) = (a.whole_space.as_ref(), b.whole_space.as_ref());
        let wa = wa.expect("rescued");
        let wb = wb.expect("rescued");
        assert_eq!(
            wa.counts, wb.counts,
            "{} {}: thread count changed a degraded count",
            a.config.property, a.family
        );
        assert_eq!(wa.approx, wb.approx);
        assert_eq!(wa.metrics.accuracy.to_bits(), wb.metrics.accuracy.to_bits());
    }
}
