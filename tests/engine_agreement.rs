//! Agreement tests between the counting engines: the d-DNNF
//! `CompiledCounter` must return exactly the counts of the search-based
//! `ExactCounter` on every formula class the reproduction produces, and the
//! compiled AccMC query plan (sums of conditioned region counts) must
//! reproduce the classic four-conjunction counts bit for bit.

use mcml::accmc::{AccMc, CountingEngine};
use mcml::backend::CounterBackend;
use mcml::counter::{CompiledCounter, CountOutcome, ModelCounter, QueryCounter};
use mcml::encode::CnfEncodable;
use mlkit::adaboost::{AdaBoost, AdaBoostConfig};
use mlkit::data::Dataset;
use mlkit::forest::{ForestConfig, RandomForest};
use mlkit::gbdt::{GbdtConfig, GradientBoosting};
use mlkit::mlp::{Mlp, MlpConfig};
use mlkit::quant::{QuantizedMlp, QuantizedSvm, DEFAULT_QUANT_BITS};
use mlkit::svm::{LinearSvm, SvmConfig};
use mlkit::tree::{DecisionTree, TreeConfig};
use modelcount::exact::ExactCounter;
use proptest::prelude::*;
use relspec::instance::RelInstance;
use relspec::properties::Property;
use relspec::translate::{translate_to_cnf, TranslateOptions};
use satkit::cnf::{Cnf, Lit, Var};

fn exact_count(cnf: &Cnf) -> u128 {
    ExactCounter::new().count(cnf).expect("no budget")
}

fn compiled_count(cnf: &Cnf) -> u128 {
    match ModelCounter::count(&CompiledCounter::new(), cnf) {
        CountOutcome::Exact(v) => v,
        other => panic!("compiled counter must be exact, got {other:?}"),
    }
}

/// Strategy: a random CNF over `max_vars` variables, optionally projected
/// onto a prefix of them.
fn arb_cnf(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    let clause = prop::collection::vec((0..max_vars as u32, any::<bool>()), 1..=3);
    (prop::collection::vec(clause, 0..=max_clauses), 0..=max_vars).prop_map(
        move |(clauses, proj)| {
            let mut cnf = Cnf::new(max_vars);
            for c in clauses {
                let lits: Vec<Lit> = c
                    .into_iter()
                    .map(|(v, pos)| if pos { Lit::pos(v) } else { Lit::neg(v) })
                    .collect();
                cnf.add_clause(lits);
            }
            if proj > 0 {
                cnf.set_projection((0..proj as u32).map(Var).collect());
            }
            cnf
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CompiledCounter == ExactCounter on random (projected) CNFs.
    #[test]
    fn compiled_matches_exact_on_random_cnfs(cnf in arb_cnf(9, 18)) {
        prop_assert_eq!(compiled_count(&cnf), exact_count(&cnf));
    }

    /// Conditioned circuit queries == exact counts of the conjunction.
    #[test]
    fn conditioned_queries_match_unit_conjunctions(
        cnf in arb_cnf(8, 14),
        cube_spec in prop::collection::vec((0u32..8, any::<bool>()), 0..=3),
    ) {
        let cube: Vec<Lit> = cube_spec
            .into_iter()
            .filter(|(v, _)| {
                // Keep only projection variables (the cube contract).
                cnf.effective_projection().contains(&Var(*v))
            })
            .map(|(v, pos)| if pos { Lit::pos(v) } else { Lit::neg(v) })
            .collect();
        let compiled = CompiledCounter::new();
        let conditioned = match compiled.count_conditioned(&cnf, &cube) {
            CountOutcome::Exact(v) => v,
            other => panic!("compiled counter must be exact, got {other:?}"),
        };
        let mut asserted = cnf.clone();
        for &l in &cube {
            asserted.add_unit(l);
        }
        prop_assert_eq!(conditioned, exact_count(&asserted));
    }
}

/// Both engines on every table property at scopes 2 and 3, φ and ¬φ, with
/// and without symmetry breaking — the exhaustive formula set of the
/// whole-space tables.
#[test]
fn engines_agree_on_all_table_properties() {
    use relspec::symmetry::SymmetryBreaking;
    for property in Property::all() {
        for scope in [2usize, 3] {
            for symmetry in [SymmetryBreaking::None, SymmetryBreaking::Transpositions] {
                let gt = translate_to_cnf(
                    &property.spec(),
                    TranslateOptions::new(scope).with_symmetry(symmetry),
                );
                for cnf in [gt.cnf_positive(), gt.cnf_negative()] {
                    assert_eq!(
                        compiled_count(&cnf),
                        exact_count(&cnf),
                        "property {property}, scope {scope}, symmetry {symmetry:?}"
                    );
                }
            }
        }
    }
}

fn labeled_dataset(property: Property, scope: usize) -> Dataset {
    let mut d = Dataset::new(scope * scope);
    for bits in 0u64..(1 << (scope * scope)) {
        let inst = RelInstance::from_bits(
            scope,
            (0..scope * scope).map(|k| bits >> k & 1 == 1).collect(),
        );
        d.push(inst.to_features(), property.holds(&inst));
    }
    d
}

/// Regression for the compiled query plan: on every table property at scope
/// 3, the sum of conditioned region counts must equal the classic four
/// conjunction counts — same tp/fp/tn/fn, same derived metrics.
#[test]
fn region_sums_equal_classic_four_counts() {
    for property in Property::all() {
        let scope = 3;
        let dataset = labeled_dataset(property, scope).subsample(70, 11);
        let tree = DecisionTree::fit(&dataset, TreeConfig::default());
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));

        let exact = CounterBackend::exact();
        let classic = AccMc::new(&exact)
            .evaluate(&gt, &tree)
            .expect("scopes match")
            .expect("no budget");

        let compiled_backend = CompiledCounter::new();
        let compiled = AccMc::with_engine(&compiled_backend, CountingEngine::Compiled)
            .evaluate(&gt, &tree)
            .expect("scopes match")
            .expect("no budget");

        assert_eq!(compiled.counts, classic.counts, "property {property}");
        assert_eq!(compiled.metrics, classic.metrics, "property {property}");
        assert_eq!(
            compiled.counts.total(),
            1u128 << (scope * scope),
            "regions must partition the whole space (property {property})"
        );
        let regions = tree
            .decision_regions()
            .expect("decision trees expose regions");
        assert_eq!(
            compiled_backend.stats().misses,
            2,
            "φ and ¬φ compiled once for {} regions (property {property})",
            regions.len()
        );
    }
}

/// Trains the compact ensemble trio the conformance tests use: a
/// three-tree majority-vote forest, a three-round boosted-stump ensemble,
/// and a three-round gradient-boosting ensemble — all small enough that
/// the exhaustive scope sweep stays fast while still exercising the
/// vote-BDD region extraction (binary folds for RFT/ABT, the staged
/// additive-score fold for GBDT).
fn fit_ensembles(train: &Dataset, seed: u64) -> (RandomForest, AdaBoost, GradientBoosting) {
    let forest = RandomForest::fit(
        train,
        ForestConfig {
            num_trees: 3,
            seed,
            ..ForestConfig::default()
        },
    );
    let ensemble = AdaBoost::fit(
        train,
        AdaBoostConfig {
            num_rounds: 3,
            weak_depth: 1,
            seed,
        },
    );
    let boosted = GradientBoosting::fit(
        train,
        GbdtConfig {
            num_rounds: 3,
            max_depth: 2,
            ..GbdtConfig::default()
        },
    );
    (forest, ensemble, boosted)
}

/// Exhaustive engine conformance for the voting ensembles: on every table
/// property at scopes 2 and 3, a random forest, a boosted ensemble and a
/// gradient-boosting ensemble must produce bit-identical whole-space
/// counts under the classic four-conjunction plan and the compiled
/// region-sum plan — and the compiled plan must reach them without ever
/// encoding the ensemble (only φ and ¬φ are compiled, shared by all three
/// models).
#[test]
fn ensemble_engines_agree_on_all_table_properties() {
    for property in Property::all() {
        for scope in [2usize, 3] {
            let full = labeled_dataset(property, scope);
            let train = if scope == 3 {
                full.subsample(80, 13)
            } else {
                full
            };
            let (forest, ensemble, boosted) = fit_ensembles(&train, 7);
            let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));

            let exact = CounterBackend::exact();
            let compiled_backend = CompiledCounter::new();
            let models: [&dyn CnfEncodable; 3] = [&forest, &ensemble, &boosted];
            for (name, model) in ["RFT", "ABT", "GBDT"].into_iter().zip(models) {
                let classic = AccMc::new(&exact)
                    .evaluate(&gt, model)
                    .expect("scopes match")
                    .expect("no budget");
                let compiled = AccMc::with_engine(&compiled_backend, CountingEngine::Compiled)
                    .evaluate(&gt, model)
                    .expect("scopes match")
                    .expect("no budget");
                assert_eq!(
                    compiled.counts, classic.counts,
                    "{name}, property {property}, scope {scope}"
                );
                assert_eq!(
                    compiled.metrics, classic.metrics,
                    "{name}, property {property}, scope {scope}"
                );
                assert_eq!(
                    compiled.counts.total(),
                    1u128 << (scope * scope),
                    "{name} regions must partition the space \
                     (property {property}, scope {scope})"
                );
            }
            assert_eq!(
                compiled_backend.stats().misses,
                2,
                "φ and ¬φ compiled once, shared by all three ensembles \
                 (property {property}, scope {scope})"
            );
        }
    }
}

/// Region-sum regression per ensemble family, mirroring
/// [`region_sums_equal_classic_four_counts`] for trees: accumulating
/// per-region conditioned counts of φ / ¬φ by hand — the exact arithmetic
/// the compiled query plan performs — must reproduce the classic four
/// conjunction counts of the same trained model, and the sums must cover
/// the whole space exactly once.
#[test]
fn ensemble_region_sums_equal_classic_four_counts() {
    let property = Property::Antisymmetric;
    let scope = 3;
    let train = labeled_dataset(property, scope).subsample(100, 17);
    let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
    let (forest, ensemble, boosted) = fit_ensembles(&train, 23);

    let models: [(&str, &dyn CnfEncodable); 3] =
        [("RFT", &forest), ("ABT", &ensemble), ("GBDT", &boosted)];
    for (name, model) in models {
        let regions = model.decision_regions().expect("within the default bound");
        assert!(!regions.is_empty(), "{name} must expose regions");

        // The four classic conjunction counts, reconstructed per label from
        // the model's own label CNFs: tp+fp = |model-true|, tn+fn = ...
        let exact = CounterBackend::exact();
        let classic = AccMc::new(&exact)
            .evaluate(&gt, model)
            .expect("scopes match")
            .expect("no budget");

        // The region sums, computed directly (not through AccMc): for each
        // region, count φ and ¬φ conditioned on its cube, and accumulate
        // into the confusion cells by region label.
        let compiled_backend = CompiledCounter::new();
        let (mut tp, mut fp, mut tn, mut fn_) = (0u128, 0u128, 0u128, 0u128);
        for region in &regions {
            let pos = match compiled_backend.count_conditioned(&gt.cnf_positive(), &region.cube) {
                CountOutcome::Exact(v) => v,
                other => panic!("compiled counts are exact, got {other:?}"),
            };
            let neg = match compiled_backend.count_conditioned(&gt.cnf_negative(), &region.cube) {
                CountOutcome::Exact(v) => v,
                other => panic!("compiled counts are exact, got {other:?}"),
            };
            match region.label {
                mcml::tree2cnf::TreeLabel::True => {
                    tp += pos;
                    fp += neg;
                }
                mcml::tree2cnf::TreeLabel::False => {
                    fn_ += pos;
                    tn += neg;
                }
            }
        }
        assert_eq!(
            (tp, fp, tn, fn_),
            (
                classic.counts.tp,
                classic.counts.fp,
                classic.counts.tn,
                classic.counts.fn_
            ),
            "{name}"
        );
        assert_eq!(
            tp + fp + tn + fn_,
            1u128 << (scope * scope),
            "{name} region sums must cover the space exactly once"
        );
    }
}

/// Trains the quantized neural/margin pair the conformance tests use: a
/// calibrated three-unit binarized MLP and an integer-weight SVM, the
/// exact models the MLP/SVM table rows evaluate.
fn fit_quantized(train: &Dataset, seed: u64) -> (QuantizedMlp, QuantizedSvm) {
    let float_mlp = Mlp::fit(
        train,
        MlpConfig {
            hidden_units: 3,
            epochs: 30,
            seed,
            ..MlpConfig::default()
        },
    );
    let mlp = QuantizedMlp::from_mlp_calibrated(&float_mlp, DEFAULT_QUANT_BITS, train.features());
    let float_svm = LinearSvm::fit(
        train,
        SvmConfig {
            seed,
            ..SvmConfig::default()
        },
    );
    (mlp, QuantizedSvm::from_svm(&float_svm, DEFAULT_QUANT_BITS))
}

/// Exhaustive engine conformance for the quantized neural/margin families:
/// on every table property at scopes 2 and 3, the binarized MLP and the
/// integer-weight SVM must produce bit-identical whole-space counts under
/// the classic threshold-CNF plan and the compiled region-sum plan — with
/// φ and ¬φ compiled once and shared by both models.
#[test]
fn quantized_engines_agree_on_all_table_properties() {
    for property in Property::all() {
        for scope in [2usize, 3] {
            let full = labeled_dataset(property, scope);
            let train = if scope == 3 {
                full.subsample(80, 13)
            } else {
                full
            };
            let (mlp, svm) = fit_quantized(&train, 7);
            let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));

            let exact = CounterBackend::exact();
            let compiled_backend = CompiledCounter::new();
            let models: [(&str, &dyn CnfEncodable); 2] = [("MLP", &mlp), ("SVM", &svm)];
            for (name, model) in models {
                let classic = AccMc::new(&exact)
                    .evaluate(&gt, model)
                    .expect("scopes match")
                    .expect("no budget");
                let compiled = AccMc::with_engine(&compiled_backend, CountingEngine::Compiled)
                    .evaluate(&gt, model)
                    .expect("scopes match")
                    .expect("no budget");
                assert_eq!(
                    compiled.counts, classic.counts,
                    "{name}, property {property}, scope {scope}"
                );
                assert_eq!(
                    compiled.metrics, classic.metrics,
                    "{name}, property {property}, scope {scope}"
                );
                assert_eq!(
                    compiled.counts.total(),
                    1u128 << (scope * scope),
                    "{name} regions must partition the space \
                     (property {property}, scope {scope})"
                );
            }
            assert_eq!(
                compiled_backend.stats().misses,
                2,
                "φ and ¬φ compiled once, shared by both quantized models \
                 (property {property}, scope {scope})"
            );
        }
    }
}

/// Region-sum regression for the quantized families, mirroring
/// [`ensemble_region_sums_equal_classic_four_counts`]: hand-accumulated
/// per-region conditioned counts must reproduce the classic four
/// conjunction counts and cover the space exactly once.
#[test]
fn quantized_region_sums_equal_classic_four_counts() {
    let property = Property::Antisymmetric;
    let scope = 3;
    let train = labeled_dataset(property, scope).subsample(100, 17);
    let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
    let (mlp, svm) = fit_quantized(&train, 23);

    let models: [(&str, &dyn CnfEncodable); 2] = [("MLP", &mlp), ("SVM", &svm)];
    for (name, model) in models {
        let regions = model.decision_regions().expect("within the default bound");
        assert!(!regions.is_empty(), "{name} must expose regions");

        let exact = CounterBackend::exact();
        let classic = AccMc::new(&exact)
            .evaluate(&gt, model)
            .expect("scopes match")
            .expect("no budget");

        let compiled_backend = CompiledCounter::new();
        let (mut tp, mut fp, mut tn, mut fn_) = (0u128, 0u128, 0u128, 0u128);
        for region in &regions {
            let pos = match compiled_backend.count_conditioned(&gt.cnf_positive(), &region.cube) {
                CountOutcome::Exact(v) => v,
                other => panic!("compiled counts are exact, got {other:?}"),
            };
            let neg = match compiled_backend.count_conditioned(&gt.cnf_negative(), &region.cube) {
                CountOutcome::Exact(v) => v,
                other => panic!("compiled counts are exact, got {other:?}"),
            };
            match region.label {
                mcml::tree2cnf::TreeLabel::True => {
                    tp += pos;
                    fp += neg;
                }
                mcml::tree2cnf::TreeLabel::False => {
                    fn_ += pos;
                    tn += neg;
                }
            }
        }
        assert_eq!(
            (tp, fp, tn, fn_),
            (
                classic.counts.tp,
                classic.counts.fp,
                classic.counts.tn,
                classic.counts.fn_
            ),
            "{name}"
        );
        assert_eq!(
            tp + fp + tn + fn_,
            1u128 << (scope * scope),
            "{name} region sums must cover the space exactly once"
        );
    }
}

/// The compiled engine also goes through any backend's generic conditioned
/// path — a plain exact counter produces identical results, just without
/// circuit reuse.
#[test]
fn compiled_engine_is_backend_agnostic() {
    let property = Property::Function;
    let scope = 3;
    let dataset = labeled_dataset(property, scope).subsample(60, 5);
    let tree = DecisionTree::fit(&dataset, TreeConfig::default());
    let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));

    let exact = ExactCounter::new();
    let via_search = AccMc::with_engine(&exact, CountingEngine::Compiled)
        .evaluate(&gt, &tree)
        .expect("scopes match")
        .expect("no budget");
    let compiled_backend = CompiledCounter::new();
    let via_circuit = AccMc::with_engine(&compiled_backend, CountingEngine::Compiled)
        .evaluate(&gt, &tree)
        .expect("scopes match")
        .expect("no budget");
    assert_eq!(via_search.counts, via_circuit.counts);
}
