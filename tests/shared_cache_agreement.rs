//! Agreement suite for the cross-query shared component cache.
//!
//! A `CompiledCounter` keeps one `SharedComponentCache` alive for its whole
//! batch, so φ, ¬φ and the per-family label CNFs of different rows import
//! each other's interned d-DNNF components. Soundness rests on the
//! portable component key (canonical residual clauses + projection
//! membership): these tests pin that a warm, heavily shared batch produces
//! **bit-identical** counts and metrics to cold single-row counters and to
//! the search-based exact engine — across all four model families, scopes
//! 2 and 3, and both counting engines — and that a φ / φ∧ψ query pair
//! actually crosses queries in the shared cache (nonzero hit rate in
//! `CompileStats`).

use mcml::accmc::CountingEngine;
use mcml::backend::CounterBackend;
use mcml::counter::{CompiledCounter, CountOutcome, ModelCounter};
use mcml::framework::{ExperimentConfig, ModelFamily, Runner, RunnerRow};
use modelcount::exact::ExactCounter;
use relspec::properties::Property;
use relspec::translate::{translate_to_cnf, TranslateOptions};
use satkit::cnf::{Cnf, Lit, Var};

fn study_runner(engine: CountingEngine) -> Runner {
    Runner::new()
        .families(ModelFamily::all())
        .rft_trees(5)
        .abt_rounds(5)
        .gbdt_rounds(4)
        .engine(engine)
}

fn assert_rows_agree(shared: &[RunnerRow], cold: &[RunnerRow], context: &str) {
    assert_eq!(shared.len(), cold.len(), "{context}: row count");
    for (a, b) in shared.iter().zip(cold) {
        assert_eq!(a.config, b.config, "{context}");
        assert_eq!(a.family, b.family, "{context}");
        let label = format!("{context}, {} {}", a.config.property, a.family);
        assert_eq!(a.test_metrics, b.test_metrics, "{label}");
        match (&a.whole_space, &b.whole_space) {
            (Some(x), Some(y)) => {
                assert_eq!(x.counts, y.counts, "{label}");
                // Metrics derive from the counts; compare the bits anyway
                // so a float-path drift cannot hide behind PartialEq.
                for (m, n) in [
                    (x.metrics.accuracy, y.metrics.accuracy),
                    (x.metrics.precision, y.metrics.precision),
                    (x.metrics.recall, y.metrics.recall),
                    (x.metrics.f1, y.metrics.f1),
                ] {
                    assert_eq!(m.to_bits(), n.to_bits(), "{label}");
                }
            }
            (None, None) => {}
            (x, y) => panic!("{label}: budget drift ({x:?} vs {y:?})"),
        }
    }
}

/// Warm shared-cache batches vs cold per-row counters vs the search-based
/// exact engine: all four families, scopes 2 and 3, both engines, two
/// properties with different symmetry settings so the batch genuinely
/// mixes formulas in one shared cache.
#[test]
fn shared_cache_batches_agree_with_cold_counters_and_search() {
    for scope in [2usize, 3] {
        let configs = vec![
            ExperimentConfig::table5(Property::Function, scope),
            ExperimentConfig::table3(Property::Antisymmetric, scope),
        ];
        for engine in [CountingEngine::Classic, CountingEngine::Compiled] {
            let runner = study_runner(engine);

            // One counter for the whole batch: every row reuses the same
            // shared component cache (this is the default wiring).
            let warm = CompiledCounter::new();
            let shared_rows = runner.run(&configs, &warm).expect("well-formed batch");
            assert_eq!(shared_rows.len(), configs.len() * ModelFamily::all().len());

            // Cold reference: a fresh counter per row, so nothing is ever
            // imported across rows.
            let mut cold_rows = Vec::new();
            for config in &configs {
                for family in ModelFamily::all() {
                    let row = study_runner(engine)
                        .families(&[*family])
                        .run(&[*config], &CompiledCounter::new())
                        .expect("well-formed row");
                    cold_rows.extend(row);
                }
            }
            assert_rows_agree(
                &shared_rows,
                &cold_rows,
                &format!("scope {scope}, engine {engine}"),
            );

            // Search-based reference: no circuits, no shared cache at all.
            let exact_rows = study_runner(CountingEngine::Classic)
                .run(&configs, &CounterBackend::exact())
                .expect("well-formed batch");
            assert_rows_agree(
                &shared_rows,
                &exact_rows,
                &format!("scope {scope}, engine {engine} vs search"),
            );
        }
    }
}

fn exact_u128(outcome: CountOutcome) -> u128 {
    match outcome {
        CountOutcome::Exact(v) => v,
        other => panic!("compiled counts are exact, got {other:?}"),
    }
}

/// Pinned cross-query regression: counting φ and then φ∧ψ (ψ over fresh
/// variables, so component decomposition isolates φ's clauses verbatim)
/// must hit the shared component cache — the hit rate in `CompileStats`
/// is required to be nonzero, and both counts must match the independent
/// search-based counter.
///
/// Function's φ is the interesting shape here: each scope row yields one
/// connected multi-clause component, big enough to clear the sharing
/// gate (tiny components — e.g. Antisymmetric's per-pair unit clauses —
/// are deliberately recompiled rather than interned, because a probe
/// costs more than the recompile).
#[test]
fn phi_and_phi_and_psi_share_components_across_queries() {
    let gt = translate_to_cnf(&Property::Function.spec(), TranslateOptions::new(3));
    let phi = gt.cnf_positive();

    // φ∧ψ: the same φ clauses plus a small ψ over four fresh variables.
    // ψ touches no φ variable, so the compiler's component decomposition
    // reproduces φ's sub-components exactly — the deterministic shape of
    // cross-query reuse (the batch analogue is φ under two symmetry
    // settings, or φ next to a model's label CNF).
    let fresh = phi.num_vars();
    let mut phi_and_psi = Cnf::new(fresh + 4);
    for clause in phi.clauses() {
        phi_and_psi.add_clause(clause.lits().to_vec());
    }
    let v = |k: usize| (fresh + k) as u32;
    phi_and_psi.add_clause(vec![Lit::pos(v(0)), Lit::pos(v(1))]);
    phi_and_psi.add_clause(vec![Lit::neg(v(1)), Lit::pos(v(2))]);
    phi_and_psi.add_clause(vec![Lit::pos(v(2)), Lit::neg(v(3))]);
    let mut projection = phi.effective_projection();
    projection.extend((0..4).map(|k| Var(v(k))));
    phi_and_psi.set_projection(projection);

    let counter = CompiledCounter::new();
    let phi_count = exact_u128(ModelCounter::count(&counter, &phi));
    let both_count = exact_u128(ModelCounter::count(&counter, &phi_and_psi));

    let stats = counter.compile_stats();
    assert!(
        stats.shared_hits > 0,
        "φ∧ψ must import φ components: {stats:?}"
    );
    assert!(stats.shared_hit_rate() > 0.0, "{stats:?}");

    let search = ExactCounter::new();
    assert_eq!(phi_count, search.count(&phi).expect("no budget"));
    assert_eq!(both_count, search.count(&phi_and_psi).expect("no budget"));
}
