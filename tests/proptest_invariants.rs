//! Property-based tests (proptest) over the core invariants of the
//! reproduction: solver vs brute force, counter vs brute force, Tseitin
//! projection-preservation, evaluator vs bounded translation, Tree2CNF
//! semantics, and metric identities.

use mcml::accmc::AccMc;
use mcml::backend::CounterBackend;
use mcml::counter::CountOutcome;
use mcml::diffmc::DiffMc;
use mcml::encode::CnfEncodable;
use mcml::fallback::approx_conditioned;
use mcml::tree2cnf::{tree_label_cnf, TreeLabel};
use mlkit::adaboost::{AdaBoost, AdaBoostConfig};
use mlkit::data::{Dataset, SplitSpec};
use mlkit::forest::{ForestConfig, RandomForest};
use mlkit::gbdt::{GbdtConfig, GradientBoosting};
use mlkit::metrics::BinaryMetrics;
use mlkit::mlp::{Mlp, MlpConfig};
use mlkit::quant::{QuantizedMlp, QuantizedSvm, DEFAULT_QUANT_BITS};
use mlkit::svm::{LinearSvm, SvmConfig};
use mlkit::tree::{DecisionTree, TreeConfig};
use mlkit::Classifier;
use modelcount::approx::ApproxConfig;
use modelcount::brute::brute_force_count;
use modelcount::exact::ExactCounter;
use proptest::prelude::*;
use relspec::instance::RelInstance;
use relspec::properties::Property;
use relspec::symmetry::SymmetryBreaking;
use relspec::translate::translate_formula;
use satkit::cnf::{Cnf, Lit};
use satkit::solver::{SolveResult, Solver};

/// Strategy: a random CNF over `max_vars` variables.
fn arb_cnf(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    let clause = prop::collection::vec((0..max_vars as u32, any::<bool>()), 1..=3);
    prop::collection::vec(clause, 0..=max_clauses).prop_map(move |clauses| {
        let mut cnf = Cnf::new(max_vars);
        for c in clauses {
            let lits: Vec<Lit> = c
                .into_iter()
                .map(|(v, pos)| if pos { Lit::pos(v) } else { Lit::neg(v) })
                .collect();
            cnf.add_clause(lits);
        }
        cnf
    })
}

/// Strategy: a random relational instance at the given scope.
fn arb_instance(scope: usize) -> impl Strategy<Value = RelInstance> {
    prop::collection::vec(any::<bool>(), scope * scope)
        .prop_map(move |bits| RelInstance::from_bits(scope, bits))
}

/// Strategy: a random labeled dataset over `num_features` binary features.
fn arb_dataset(num_features: usize) -> impl Strategy<Value = Dataset> {
    prop::collection::vec(
        (prop::collection::vec(0u8..=1, num_features), any::<bool>()),
        4..40,
    )
    .prop_map(move |rows| {
        let mut d = Dataset::new(num_features);
        for (features, label) in rows {
            d.push(features, label);
        }
        d
    })
}

/// The decision-region contract behind the compiled query plan, verified
/// by counting (mirroring [`tree_region_counts_partition_the_space`]): the
/// extracted cubes must be pairwise disjoint — any two clash on some
/// feature literal — and exhaustive — the model counts of a tautology
/// conditioned on each cube sum to exactly `2^n`, so no input is covered
/// twice or missed.
fn check_region_cover(model: &dyn CnfEncodable) {
    let n = model.num_features();
    let regions = model
        .decision_regions()
        .expect("within the default vote-node bound");
    for (i, a) in regions.iter().enumerate() {
        for b in &regions[i + 1..] {
            let clash = a.cube.iter().any(|la| {
                b.cube
                    .iter()
                    .any(|lb| la.var() == lb.var() && la.is_positive() != lb.is_positive())
            });
            assert!(clash, "regions {a:?} and {b:?} overlap");
        }
    }
    let exact = ExactCounter::new();
    let mut covered = 0u128;
    for region in &regions {
        let mut tautology = Cnf::new(n);
        for &lit in &region.cube {
            tautology.add_unit(lit);
        }
        covered += exact.count(&tautology).expect("no budget");
    }
    assert_eq!(covered, 1u128 << n, "regions must cover every input once");
}

fn brute_sat(cnf: &Cnf) -> bool {
    let n = cnf.num_vars();
    (0u32..(1 << n)).any(|bits| {
        let a: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        cnf.eval(&a)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn solver_agrees_with_brute_force(cnf in arb_cnf(7, 18)) {
        let mut solver = Solver::from_cnf(&cnf);
        let result = solver.solve();
        prop_assert_eq!(result.is_sat(), brute_sat(&cnf));
        if let SolveResult::Sat(model) = result {
            prop_assert!(cnf.eval(model.values()));
        }
    }

    #[test]
    fn exact_counter_agrees_with_brute_force(cnf in arb_cnf(8, 16)) {
        let exact = ExactCounter::new().count(&cnf).expect("no budget");
        prop_assert_eq!(exact, brute_force_count(&cnf));
    }

    #[test]
    fn simplified_cnf_preserves_models(cnf in arb_cnf(6, 12)) {
        let simplified = cnf.simplified();
        let n = cnf.num_vars();
        for bits in 0u32..(1 << n) {
            let a: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(cnf.eval(&a), simplified.eval(&a));
        }
    }

    #[test]
    fn property_translation_matches_evaluator(inst in arb_instance(3), idx in 0usize..16) {
        let property = Property::all()[idx];
        let expr = translate_formula(&property.spec(), 3);
        prop_assert_eq!(expr.eval(inst.bits()), property.holds(&inst));
    }

    #[test]
    fn symmetry_breaking_keeps_one_representative_per_orbit(inst in arb_instance(3)) {
        // Some permutation of every instance is kept by full symmetry
        // breaking (the lex-minimal one), and permuting never changes
        // whether a property holds.
        let perms: Vec<Vec<usize>> = vec![
            vec![0, 1, 2], vec![0, 2, 1], vec![1, 0, 2],
            vec![1, 2, 0], vec![2, 0, 1], vec![2, 1, 0],
        ];
        let kept = perms.iter().any(|p| SymmetryBreaking::Full.keeps(&inst.permuted(p)));
        prop_assert!(kept);
        for p in &perms {
            prop_assert_eq!(
                Property::Transitive.holds(&inst),
                Property::Transitive.holds(&inst.permuted(p))
            );
        }
    }

    /// The batched circuit query must be indistinguishable from issuing
    /// the cubes one at a time — and both must equal a fresh search count
    /// of the conjunction.
    #[test]
    fn count_cubes_agrees_with_per_cube_conditioning(
        cnf in arb_cnf(7, 14),
        cubes in prop::collection::vec(
            prop::collection::vec((0..7u32, any::<bool>()), 0..=4),
            1..=6,
        )
    ) {
        let circuit = satkit::ddnnf::Compiler::new().compile(&cnf).expect("no budget");
        let cubes: Vec<Vec<Lit>> = cubes
            .into_iter()
            .map(|c| {
                c.into_iter()
                    .map(|(v, pos)| if pos { Lit::pos(v) } else { Lit::neg(v) })
                    .collect()
            })
            .collect();
        let batched = circuit.count_cubes(&cubes);
        prop_assert_eq!(batched.len(), cubes.len());
        let exact = ExactCounter::new();
        for (j, cube) in cubes.iter().enumerate() {
            prop_assert_eq!(batched[j], circuit.count_conditioned(cube), "cube {:?}", cube);
            let mut conjunction = cnf.clone();
            for &lit in cube {
                conjunction.add_unit(lit);
            }
            // A self-contradictory cube makes the conjunction unsatisfiable,
            // so the search count is 0 exactly like the circuit's answer.
            let searched = exact.count(&conjunction).expect("no budget");
            prop_assert_eq!(batched[j], searched, "cube {:?}", cube);
        }
    }

    #[test]
    fn tree2cnf_regions_agree_with_predictions(dataset in arb_dataset(4)) {
        let tree = DecisionTree::fit(&dataset, TreeConfig::default());
        let cnf_true = tree_label_cnf(&tree, TreeLabel::True);
        let cnf_false = tree_label_cnf(&tree, TreeLabel::False);
        for bits in 0u32..16 {
            let features: Vec<u8> = (0..4).map(|k| ((bits >> k) & 1) as u8).collect();
            let assignment: Vec<bool> = features.iter().map(|&b| b != 0).collect();
            let predicted = tree.predict(&features);
            prop_assert_eq!(cnf_true.eval(&assignment), predicted);
            prop_assert_eq!(cnf_false.eval(&assignment), !predicted);
        }
    }

    #[test]
    fn tree_region_counts_partition_the_space(dataset in arb_dataset(5)) {
        let tree = DecisionTree::fit(&dataset, TreeConfig::default());
        let counter = ExactCounter::new();
        let t = counter.count(&tree_label_cnf(&tree, TreeLabel::True)).unwrap();
        let f = counter.count(&tree_label_cnf(&tree, TreeLabel::False)).unwrap();
        prop_assert_eq!(t + f, 32);
    }

    /// Random forests → vote-BDD regions are pairwise disjoint and
    /// exhaustive, the contract the compiled query plan sums over.
    #[test]
    fn forest_regions_are_disjoint_and_exhaustive(
        dataset in arb_dataset(4), seed in 0u64..100
    ) {
        let forest = RandomForest::fit(
            &dataset,
            ForestConfig { num_trees: 3, seed, ..ForestConfig::default() },
        );
        check_region_cover(&forest);
    }

    /// Boosted stumps → the float-exact weighted-vote BDD yields the same
    /// disjoint + exhaustive cube cover.
    #[test]
    fn boosted_stump_regions_are_disjoint_and_exhaustive(
        dataset in arb_dataset(4), seed in 0u64..100
    ) {
        let ensemble = AdaBoost::fit(
            &dataset,
            AdaBoostConfig { num_rounds: 4, weak_depth: 1, seed },
        );
        check_region_cover(&ensemble);
    }

    /// Gradient boosting → the staged additive-score fold yields the same
    /// disjoint + exhaustive cube cover (training is deterministic, so the
    /// dataset strategy provides the variation).
    #[test]
    fn gbdt_regions_are_disjoint_and_exhaustive(
        dataset in arb_dataset(4), rounds in 1usize..6
    ) {
        let model = GradientBoosting::fit(
            &dataset,
            GbdtConfig { num_rounds: rounds, max_depth: 2, ..GbdtConfig::default() },
        );
        check_region_cover(&model);
    }

    /// Binarized MLP → the per-unit threshold BDDs and the output-layer
    /// staged fold yield the same disjoint + exhaustive cube cover.
    #[test]
    fn quantized_mlp_regions_are_disjoint_and_exhaustive(
        dataset in arb_dataset(4), seed in 0u64..100
    ) {
        let float = Mlp::fit(
            &dataset,
            MlpConfig { hidden_units: 3, epochs: 15, seed, ..MlpConfig::default() },
        );
        let model = QuantizedMlp::from_mlp_calibrated(
            &float,
            DEFAULT_QUANT_BITS,
            dataset.features(),
        );
        check_region_cover(&model);
    }

    /// Integer-weight SVM → the single threshold BDD yields the same
    /// disjoint + exhaustive cube cover.
    #[test]
    fn quantized_svm_regions_are_disjoint_and_exhaustive(
        dataset in arb_dataset(4), seed in 0u64..100
    ) {
        let float = LinearSvm::fit(&dataset, SvmConfig { seed, ..SvmConfig::default() });
        let model = QuantizedSvm::from_svm(&float, DEFAULT_QUANT_BITS);
        check_region_cover(&model);
    }

    #[test]
    fn diffmc_counts_are_consistent(a in arb_dataset(4), b in arb_dataset(4)) {
        let tree_a = DecisionTree::fit(&a, TreeConfig::default());
        let tree_b = DecisionTree::fit(&b, TreeConfig::default());
        let backend = CounterBackend::exact();
        let r = DiffMc::new(&backend).compare(&tree_a, &tree_b).unwrap().unwrap().counts;
        prop_assert_eq!(r.total(), 16);
        prop_assert!((r.diff() + r.sim() - 1.0).abs() < 1e-12);
        // Swapping the trees swaps TF and FT.
        let s = DiffMc::new(&backend).compare(&tree_b, &tree_a).unwrap().unwrap().counts;
        prop_assert_eq!(r.tf, s.ft);
        prop_assert_eq!(r.ft, s.tf);
    }

    #[test]
    fn metrics_are_bounded_and_consistent(
        tp in 0u64..1000, fp in 0u64..1000, tn in 0u64..1000, fn_ in 0u64..1000
    ) {
        let m = BinaryMetrics::from_counts(tp.into(), fp.into(), tn.into(), fn_.into());
        for v in [m.accuracy, m.precision, m.recall, m.f1] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        // F1 is the harmonic mean of precision and recall: when both are
        // positive it lies between them.
        if m.precision > 0.0 && m.recall > 0.0 {
            let lo = m.precision.min(m.recall);
            let hi = m.precision.max(m.recall);
            prop_assert!(m.f1 >= lo - 1e-12 && m.f1 <= hi + 1e-12);
        } else {
            prop_assert_eq!(m.f1, 0.0);
        }
    }

    #[test]
    fn dataset_splits_partition_and_are_stratified(
        dataset in arb_dataset(4), percent in 10u32..90
    ) {
        prop_assume!(dataset.class_counts().0 >= 2 && dataset.class_counts().1 >= 2);
        let (train, test) = dataset.split(SplitSpec::new(percent), 7);
        prop_assert_eq!(train.len() + test.len(), dataset.len());
        let (p, n) = dataset.class_counts();
        let (tp, tn) = train.class_counts();
        let (sp, sn) = test.class_counts();
        prop_assert_eq!(tp + sp, p);
        prop_assert_eq!(tn + sn, n);
    }

    #[test]
    fn negative_sampler_never_returns_positives(idx in 0usize..16, seed in 0u64..50) {
        let property = Property::all()[idx];
        let negatives = datagen::negative::sample_negatives(property, 3, 20, seed);
        for inst in &negatives {
            prop_assert!(!property.holds(inst));
        }
    }
}

// The approximate rung of the degradation ladder hashes the conditioned
// formula up to `rounds` times per case, so it runs with a smaller case
// budget than the cheap invariants above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The rung-3 contract of [`mcml::fallback`], mechanically: an
    /// approx-fallback conditioned count is **exact** whenever the true
    /// count of `cnf ∧ cube` fits under the counter's pivot (the base case
    /// enumerates), and within a `1 + ε` factor otherwise. The seed derives
    /// from the `(formula, cube)` fingerprint, so every generated case is
    /// one fixed, reproducible estimate.
    #[test]
    fn approx_conditioned_is_exact_below_the_pivot_and_within_epsilon_above(
        cnf in arb_cnf(8, 12),
        cube in prop::collection::vec((0..8u32, any::<bool>()), 0..=3),
    ) {
        let cube: Vec<Lit> = cube
            .into_iter()
            .map(|(v, pos)| if pos { Lit::pos(v) } else { Lit::neg(v) })
            .collect();
        let mut conditioned = cnf.clone();
        for &lit in &cube {
            conditioned.add_unit(lit);
        }
        let truth = brute_force_count(&conditioned);
        let config = ApproxConfig::default();
        let outcome = approx_conditioned(&cnf, &cube, config.epsilon, config.delta);
        let CountOutcome::Approx { estimate, epsilon, delta } = outcome else {
            return Err(TestCaseError::fail(format!("expected Approx, got {outcome:?}")));
        };
        prop_assert_eq!(epsilon, config.epsilon);
        prop_assert_eq!(delta, config.delta);
        if truth <= config.pivot() as u128 {
            prop_assert_eq!(estimate, truth, "below the pivot the count enumerates exactly");
        } else {
            let (est, tru) = (estimate as f64, truth as f64);
            prop_assert!(
                est <= tru * (1.0 + config.epsilon) && est >= tru / (1.0 + config.epsilon),
                "estimate {} of true count {} outside the 1+ε band", estimate, truth
            );
        }
        // Determinism: the fingerprint-derived seed pins the estimate.
        prop_assert_eq!(approx_conditioned(&cnf, &cube, config.epsilon, config.delta), outcome);
    }
}

// The AccMC partition invariant involves four projected counts per backend
// per case, so it runs with a smaller case budget than the cheap invariants
// above.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn accmc_counts_partition_the_space_under_both_backends(
        idx in 0usize..16, seed in 0u64..1000
    ) {
        let scope = 3;
        let property = Property::all()[idx];
        let mut dataset = Dataset::new(scope * scope);
        for bits in 0u64..(1 << (scope * scope)) {
            let inst = RelInstance::from_bits(
                scope,
                (0..scope * scope).map(|k| bits >> k & 1 == 1).collect(),
            );
            dataset.push(inst.to_features(), property.holds(&inst));
        }
        let tree = DecisionTree::fit(&dataset.subsample(60, seed), TreeConfig::default());
        let gt = relspec::translate::translate_to_cnf(
            &property.spec(),
            relspec::translate::TranslateOptions::new(scope),
        );
        // A tight ε gives the approximate backend a pivot above 2⁹, so its
        // counts are exact enumerations and the partition must hold for it
        // just as for the exact backend.
        let backends = [
            CounterBackend::exact(),
            CounterBackend::approx_with(ApproxConfig { epsilon: 0.1, ..ApproxConfig::default() }),
        ];
        for backend in &backends {
            let result = AccMc::new(backend)
                .evaluate(&gt, &tree)
                .expect("scopes match")
                .expect("no budget configured");
            prop_assert_eq!(
                result.counts.total(),
                1u128 << tree.num_features(),
                "backend {}", backend.name()
            );
        }
    }
}
