//! Cross-crate integration tests: the full MCML pipeline exercised end to
//! end at scopes small enough to validate every number against brute force.
//!
//! The whole-space evaluations in this suite honour the `MCML_ENGINE`
//! environment variable (see [`CountingEngine::from_env`]): the CI
//! conformance matrix runs the identical tests under `classic` and
//! `compiled`, so every brute-force cross-check here doubles as an
//! engine-conformance check.

use datagen::builder::{DatasetBuilder, DatasetConfig, SplitRatio};
use mcml::accmc::{AccMc, CountingEngine, SpaceCounts};
use mcml::backend::CounterBackend;
use mcml::diffmc::DiffMc;
use mcml::framework::{evaluate_all_models, Experiment, ExperimentConfig};
use mcml::tree2cnf::{tree_label_cnf, TreeLabel};
use mlkit::tree::{DecisionTree, TreeConfig};
use mlkit::Classifier;
use modelcount::approx::ApproxCounter;
use modelcount::exact::ExactCounter;
use relspec::instance::RelInstance;
use relspec::properties::Property;
use relspec::symmetry::SymmetryBreaking;
use relspec::translate::{translate_to_cnf, TranslateOptions};

/// The counting engine under test — `classic` unless the CI matrix (or a
/// local run) sets `MCML_ENGINE=compiled`.
fn engine() -> CountingEngine {
    CountingEngine::from_env()
}

fn all_instances(scope: usize) -> impl Iterator<Item = RelInstance> {
    (0u64..(1 << (scope * scope))).map(move |bits| {
        RelInstance::from_bits(
            scope,
            (0..scope * scope).map(|k| bits >> k & 1 == 1).collect(),
        )
    })
}

#[test]
fn table1_counts_match_closed_forms_at_scope_3() {
    // The Table 1 pipeline (translate property -> count) validated against
    // combinatorial closed forms at scope 3, for both counters.
    let expected: &[(Property, u128)] = &[
        (Property::Antisymmetric, 216),
        (Property::Bijective, 6),
        (Property::Connex, 27),
        (Property::Equivalence, 5),
        (Property::Function, 27),
        (Property::Functional, 64),
        (Property::Injective, 27),
        (Property::Irreflexive, 64),
        (Property::NonStrictOrder, 19),
        (Property::PartialOrder, 152),
        (Property::PreOrder, 29),
        (Property::Reflexive, 64),
        (Property::StrictOrder, 19),
        (Property::Surjective, 6),
        (Property::TotalOrder, 6),
        (Property::Transitive, 171),
    ];
    let exact = ExactCounter::new();
    for &(property, want) in expected {
        let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(3));
        let cnf = gt.cnf_positive();
        assert_eq!(exact.count(&cnf), Some(want), "exact count for {property}");
        // The approximate counter is exact for counts below its pivot and
        // within its (epsilon, delta) bound otherwise.
        let approx = ApproxCounter::default().count(&cnf) as f64;
        let want_f = want as f64;
        assert!(
            approx <= want_f * 1.8 && approx >= want_f / 1.8,
            "approx count {approx} too far from {want} for {property}"
        );
    }
}

#[test]
fn symmetry_breaking_shrinks_every_property_count() {
    let exact = ExactCounter::new();
    for property in Property::all() {
        let plain = translate_to_cnf(&property.spec(), TranslateOptions::new(4));
        let sb = translate_to_cnf(
            &property.spec(),
            TranslateOptions::new(4).with_symmetry(SymmetryBreaking::Transpositions),
        );
        let plain_count = exact.count(&plain.cnf_positive()).unwrap();
        let sb_count = exact.count(&sb.cnf_positive()).unwrap();
        assert!(
            sb_count <= plain_count,
            "{property}: {sb_count} > {plain_count}"
        );
        assert!(
            sb_count > 0,
            "{property}: symmetry breaking removed every solution"
        );
    }
}

#[test]
fn accmc_equals_brute_force_for_trained_tree() {
    let property = Property::PreOrder;
    let scope = 3;
    let dataset = DatasetBuilder::new().build(
        DatasetConfig::new(property, scope)
            .without_symmetry()
            .with_max_positive(500),
    );
    let (train, _) = dataset.split(SplitRatio::new(50));
    let tree = DecisionTree::fit(&train, TreeConfig::default());

    let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
    let backend = CounterBackend::exact();
    let result = AccMc::with_engine(&backend, engine())
        .evaluate(&gt, &tree)
        .unwrap()
        .unwrap();

    let mut brute = SpaceCounts::default();
    for inst in all_instances(scope) {
        let truth = property.holds(&inst);
        let predicted = tree.predict(&inst.to_features());
        match (truth, predicted) {
            (true, true) => brute.tp += 1,
            (false, true) => brute.fp += 1,
            (false, false) => brute.tn += 1,
            (true, false) => brute.fn_ += 1,
        }
    }
    assert_eq!(result.counts, brute);
}

#[test]
fn diffmc_is_symmetric_and_self_diff_is_zero() {
    let property = Property::Functional;
    let scope = 3;
    let experiment = Experiment::new(ExperimentConfig {
        ratio: SplitRatio::new(50),
        ..ExperimentConfig::table5(property, scope)
    });
    let (tree_a, _) = experiment.train_tree(TreeConfig::default());
    let (tree_b, _) = experiment.train_tree(TreeConfig::with_max_depth(3));
    let backend = CounterBackend::exact();
    let diff = DiffMc::with_engine(&backend, engine());

    let ab = diff.compare(&tree_a, &tree_b).unwrap().unwrap().counts;
    let ba = diff.compare(&tree_b, &tree_a).unwrap().unwrap().counts;
    assert_eq!(ab.tt, ba.tt);
    assert_eq!(ab.ff, ba.ff);
    assert_eq!(ab.tf, ba.ft);
    assert_eq!(ab.ft, ba.tf);
    assert_eq!(ab.total(), 1u128 << (scope * scope));

    let aa = diff.compare(&tree_a, &tree_a).unwrap().unwrap().counts;
    assert_eq!(aa.tf + aa.ft, 0);
    assert_eq!(aa.diff(), 0.0);
}

#[test]
fn tree_regions_partition_ground_truth_counts() {
    // For any tree and property: tp + fn = |phi| and fp + tn = |not phi|.
    let property = Property::Antisymmetric;
    let scope = 3;
    let dataset = DatasetBuilder::new().build(
        DatasetConfig::new(property, scope)
            .without_symmetry()
            .with_max_positive(200),
    );
    let (train, _) = dataset.split(SplitRatio::new(25));
    let tree = DecisionTree::fit(&train, TreeConfig::default());
    let gt = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
    let backend = CounterBackend::exact();
    let counts = AccMc::with_engine(&backend, engine())
        .evaluate(&gt, &tree)
        .unwrap()
        .unwrap()
        .counts;

    let exact = ExactCounter::new();
    let positives = exact.count(&gt.cnf_positive()).unwrap();
    let negatives = exact.count(&gt.cnf_negative()).unwrap();
    assert_eq!(counts.tp + counts.fn_, positives);
    assert_eq!(counts.fp + counts.tn, negatives);

    // And the tree's own regions partition the full space.
    let t = exact
        .count(&tree_label_cnf(&tree, TreeLabel::True))
        .unwrap();
    let f = exact
        .count(&tree_label_cnf(&tree, TreeLabel::False))
        .unwrap();
    assert_eq!(t + f, 1u128 << (scope * scope));
    assert_eq!(counts.tp + counts.fp, t);
    assert_eq!(counts.tn + counts.fn_, f);
}

#[test]
fn all_models_learn_reflexive_well() {
    // Every model family should comfortably learn the diagonal-only property
    // on a balanced dataset.
    let dataset = DatasetBuilder::new().build(
        DatasetConfig::new(Property::Reflexive, 4)
            .without_symmetry()
            .with_max_positive(600),
    );
    let (train, test) = dataset.split(SplitRatio::new(75));
    for report in evaluate_all_models(&train, &test, 3) {
        assert!(
            report.metrics.accuracy >= 0.85,
            "{} accuracy {} too low",
            report.model,
            report.metrics.accuracy
        );
    }
}

#[test]
fn headline_shape_precision_collapse_and_exceptions() {
    // The paper's central qualitative claims, at scope 4:
    // 1. test-set metrics look strong for every property;
    // 2. whole-space precision collapses for sparse properties;
    // 3. Reflexive and Irreflexive remain perfect.
    let backend = CounterBackend::exact();
    for property in [Property::Reflexive, Property::Irreflexive] {
        let result = Experiment::new(ExperimentConfig::table5(property, 4))
            .run_with_engine(&backend, engine());
        let ws = result.whole_space.unwrap();
        assert_eq!(ws.metrics.precision, 1.0, "{property}");
        assert_eq!(ws.metrics.recall, 1.0, "{property}");
    }
    for property in [
        Property::PreOrder,
        Property::StrictOrder,
        Property::Function,
    ] {
        let result = Experiment::new(ExperimentConfig::table5(property, 4))
            .run_with_engine(&backend, engine());
        let ws = result.whole_space.unwrap();
        assert!(
            result.test_metrics.f1 >= 0.75,
            "{property}: test F1 {} unexpectedly low",
            result.test_metrics.f1
        );
        assert!(
            ws.metrics.precision <= 0.5,
            "{property}: whole-space precision {} did not collapse",
            ws.metrics.precision
        );
        assert!(
            ws.metrics.recall >= 0.7,
            "{property}: whole-space recall {} unexpectedly low",
            ws.metrics.recall
        );
    }
}

#[test]
fn dataset_labels_always_match_the_evaluator() {
    for property in [
        Property::Connex,
        Property::StrictOrder,
        Property::Surjective,
    ] {
        let pd =
            DatasetBuilder::new().build(DatasetConfig::new(property, 4).with_max_positive(300));
        for (features, label) in pd.dataset.iter() {
            let inst = RelInstance::from_features(4, features);
            assert_eq!(property.holds(&inst), label, "{property}");
        }
    }
}
