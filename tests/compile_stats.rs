//! Compile-stats regression tests: pin the branching-decision counts and
//! component-cache hit rates of the d-DNNF compiler on fixed ground-truth
//! formulas at scopes 2–3.
//!
//! The activity-guided branching heuristic and the signature-keyed
//! component cache are pure performance machinery — a bug in either would
//! not change any count, only make compilation quietly slower (more
//! decisions, fewer cache hits). Pinning the exact trace statistics makes
//! such a regression fail loudly instead. The compiler is fully
//! deterministic (activity seeding, tie-breaking and component ordering
//! are all defined without hash-iteration or randomness), so exact
//! equality is safe to assert across platforms.
//!
//! If an *intentional* heuristic change shifts these numbers, re-pin them
//! — and record the before/after `BENCH_counting.json` so the trade is
//! visible in the perf trail.

use modelcount::exact::ExactCounter;
use relspec::properties::Property;
use relspec::translate::{translate_to_cnf, TranslateOptions};
use satkit::ddnnf::Compiler;

/// One pinned compilation: φ of `property` at `scope`, with the expected
/// `(decisions, cache_lookups, cache_hits)` trace statistics.
struct Pin {
    property: Property,
    scope: usize,
    decisions: u64,
    cache_lookups: u64,
    cache_hits: u64,
}

fn check(pin: &Pin) {
    let gt = translate_to_cnf(&pin.property.spec(), TranslateOptions::new(pin.scope));
    let cnf = gt.cnf_positive();
    let circuit = Compiler::new().compile(&cnf).expect("no budget configured");
    let stats = circuit.stats();
    assert_eq!(
        (stats.decisions, stats.cache_lookups, stats.cache_hits),
        (pin.decisions, pin.cache_lookups, pin.cache_hits),
        "compile-stats drift for {} at scope {} (got {stats:?}); if the \
         heuristic change is intentional, re-pin and record the bench delta",
        pin.property.name(),
        pin.scope,
    );
    let rate = stats.cache_hit_rate();
    if pin.cache_lookups > 0 {
        assert_eq!(rate, pin.cache_hits as f64 / pin.cache_lookups as f64);
    } else {
        assert_eq!(rate, 0.0, "no probes means a zero hit rate by definition");
    }
    assert!((0.0..=1.0).contains(&rate));
    // The trace statistics are only meaningful for a correct circuit.
    assert_eq!(
        circuit.count(),
        ExactCounter::new().count(&cnf).expect("no budget"),
        "compiled count must match the search counter for {}",
        pin.property.name(),
    );
}

#[test]
fn pinned_compile_stats_scope2() {
    for pin in [
        Pin {
            property: Property::Reflexive,
            scope: 2,
            decisions: 0,
            cache_lookups: 0,
            cache_hits: 0,
        },
        Pin {
            property: Property::Antisymmetric,
            scope: 2,
            decisions: 1,
            cache_lookups: 1,
            cache_hits: 0,
        },
        Pin {
            property: Property::Transitive,
            scope: 2,
            decisions: 9,
            cache_lookups: 9,
            cache_hits: 0,
        },
    ] {
        check(&pin);
    }
}

#[test]
fn pinned_compile_stats_scope3() {
    for pin in [
        Pin {
            property: Property::Antisymmetric,
            scope: 3,
            decisions: 3,
            cache_lookups: 3,
            cache_hits: 0,
        },
        Pin {
            property: Property::Transitive,
            scope: 3,
            decisions: 55,
            cache_lookups: 82,
            cache_hits: 27,
        },
        Pin {
            property: Property::Function,
            scope: 3,
            decisions: 6,
            cache_lookups: 6,
            cache_hits: 0,
        },
    ] {
        check(&pin);
    }
}
