#!/usr/bin/env bash
# Bench-trend gate: compares a fresh BENCH_counting.json against the
# baseline downloaded from the previous CI run's artifact and fails when
# any benchmark's mean wall-clock regressed by more than FACTOR.
#
# Usage: bench_trend.sh BASELINE.json FRESH.json [FACTOR]
#
#   BASELINE.json  the previous run's report (missing file => first run:
#                  the gate seeds the baseline from FRESH.json, warns
#                  loudly, and passes — so the trajectory starts *now*
#                  instead of silently never)
#   FRESH.json     the report this run just wrote
#   FACTOR         regression threshold on mean_ns (default 1.5)
#
# Reports in smoke mode (`cargo bench -- --test`, single-shot timings) are
# too noisy for a 1.5x gate, so when either side is a smoke report the
# threshold is relaxed to at least 3.0 — a real hot-path regression still
# trips it, scheduler jitter does not.
#
# Benchmarks present on only one side (added or removed) are listed for
# information but never fail the gate.
set -euo pipefail

baseline="${1:?usage: bench_trend.sh BASELINE.json FRESH.json [FACTOR]}"
fresh="${2:?usage: bench_trend.sh BASELINE.json FRESH.json [FACTOR]}"
factor="${3:-1.5}"

if [ ! -f "$fresh" ]; then
    echo "bench-trend: fresh report $fresh not found" >&2
    exit 2
fi

if [ ! -f "$baseline" ]; then
    mkdir -p "$(dirname "$baseline")"
    cp "$fresh" "$baseline"
    echo "::warning::bench-trend: no baseline report at $baseline — seeded it from $fresh. This run had nothing to compare against and passes; every later run is gated against the trajectory that starts here."
    exit 0
fi

modes=$(jq -r '.mode' "$baseline" "$fresh" | sort -u | paste -sd, -)
if jq -e -r '.mode' "$baseline" "$fresh" | grep -qx smoke; then
    relaxed=$(awk -v f="$factor" 'BEGIN { print (f < 3.0) ? 3.0 : f }')
    if [ "$relaxed" != "$factor" ]; then
        echo "bench-trend: smoke-mode timings detected (modes: $modes); relaxing threshold ${factor}x -> ${relaxed}x"
        factor="$relaxed"
    fi
fi

# name<TAB>old_mean<TAB>new_mean<TAB>ratio for every benchmark present in
# both reports, sorted by ratio descending.
table=$(jq -r -n --slurpfile old "$baseline" --slurpfile new "$fresh" '
    ($old[0].benches | map({(.name): .mean_ns}) | add // {}) as $base
    | $new[0].benches[]
    | select($base[.name] != null and $base[.name] > 0)
    | [.name, $base[.name], .mean_ns, (.mean_ns / $base[.name])]
    | @tsv' | sort -t"$(printf '\t')" -k4 -nr)

if [ -z "$table" ]; then
    echo "::warning::bench-trend: the reports share no benchmark names — nothing to compare"
    exit 0
fi

new_only=$(jq -r -n --slurpfile old "$baseline" --slurpfile new "$fresh" '
    ($old[0].benches | map(.name)) as $names
    | $new[0].benches[] | select(.name as $n | $names | index($n) | not) | .name')
[ -n "$new_only" ] && printf 'bench-trend: new benchmarks (no baseline): %s\n' "$(echo "$new_only" | paste -sd' ' -)"

status=0
while IFS=$'\t' read -r name old_ns new_ns ratio; do
    flagged=$(awk -v r="$ratio" -v f="$factor" 'BEGIN { print (r > f) ? 1 : 0 }')
    pretty=$(awk -v r="$ratio" 'BEGIN { printf "%.2f", r }')
    if [ "$flagged" = 1 ]; then
        echo "::error::bench-trend: $name regressed ${pretty}x (mean ${old_ns}ns -> ${new_ns}ns, threshold ${factor}x)"
        status=1
    else
        echo "bench-trend: $name ${pretty}x (mean ${old_ns}ns -> ${new_ns}ns)"
    fi
done <<< "$table"

if [ "$status" -ne 0 ]; then
    echo "bench-trend: FAILED — at least one benchmark regressed past ${factor}x" >&2
else
    echo "bench-trend: ok — no benchmark regressed past ${factor}x"
fi
exit "$status"
