#!/usr/bin/env bash
# Degradation smoke test for the fallback ladder:
#
#   1. a table3 run whose counting budget (--budget 1) cannot finish even
#      one exact count, under --fallback approx, must still print a
#      complete table — zero "warning: row" failures on stderr and at
#      least one (ε, δ)-labeled `A` guarantee cell on stdout;
#   2. the same run with 1 and with 8 worker threads must produce
#      byte-identical tables (rescue seeds derive from the conditioned
#      queries themselves, never from the schedule). The wall-clock
#      Time[s] column is legitimately nondeterministic and is stripped
#      before the comparison.
#
# The engine under test follows MCML_ENGINE (classic unless set), so the
# CI conformance matrix exercises the ladder on both query plans.
#
# Usage: scripts/degradation_smoke.sh   (from anywhere; builds release)
set -euo pipefail

cd "$(dirname "$0")/.."

ENGINE="${MCML_ENGINE:-classic}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

cargo build --release -p mcml-bench

run_table() {
  local threads="$1" out="$2" err="$3"
  target/release/table3 --engine "$ENGINE" --scope 3 \
    --budget 1 --fallback approx --threads "$threads" \
    >"$out" 2>"$err"
}
run_table 1 "$tmp/t1.out" "$tmp/t1.err"
run_table 8 "$tmp/t8.out" "$tmp/t8.err"

# 1. Soft degradation: no failed rows, at least one approx-labeled cell.
for err in "$tmp/t1.err" "$tmp/t8.err"; do
  if grep -q "warning: row" "$err"; then
    echo "smoke: the ladder left failed rows under --fallback approx:" >&2
    grep "warning: row" "$err" >&2
    exit 1
  fi
done
approx_rows="$(grep -c "A ε≤" "$tmp/t1.out" || true)"
if [[ "$approx_rows" -lt 1 ]]; then
  echo "smoke: expected A-labeled degraded rows, got none; table was:" >&2
  cat "$tmp/t1.out" >&2
  exit 1
fi
echo "smoke: $approx_rows approx-labeled rows under the tiny budget ($ENGINE engine)"

# 2. Schedule-independence: identical tables modulo the Time[s] column
# (the last column of every table line).
strip_time() { awk 'NF > 1 { NF-- } { print }' "$1"; }
if ! diff <(strip_time "$tmp/t1.out") <(strip_time "$tmp/t8.out"); then
  echo "smoke: the degraded table depends on the worker-thread count" >&2
  exit 1
fi
echo "smoke: 1-thread and 8-thread degraded tables are byte-identical"
echo "smoke: OK"
