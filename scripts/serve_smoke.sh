#!/usr/bin/env bash
# End-to-end smoke test for the serving path:
#
#   1. two compiled table3 runs persist their circuits and region covers
#      to two separate artifact directories (and print the batch
#      whole-space metrics);
#   2. mcml-serve merges both directories into one store and answers over
#      TCP;
#   3. a third table3 run under a tiny counting budget (--budget 1,
#      --fallback approx) persists region covers whose circuits never
#      compiled — the server, started with --fallback approx, serves that
#      unit degraded: approximate counts, every reply labeled
#      'approx EPS DELTA';
#   4. one persistent connection (client --stdin) issues accuracy queries
#      for both exact artifacts, stats, a hot reload, a post-reload
#      accuracy query, a degraded-unit accuracy query and the shutdown —
#      every served exact accuracy must reproduce the batch table's
#      Acc(phi) cell exactly (both sides round the same f64 to four
#      decimals), before and after the reload, and the degraded reply
#      must carry the approx label.
#
# Usage: scripts/serve_smoke.sh   (from anywhere; builds in release mode)
set -euo pipefail

cd "$(dirname "$0")/.."

PROPERTY_A=Function    # Property::name() spellings — used in queries and table rows
PROPERTY_B=Reflexive
PROPERTY_C=Transitive  # served degraded: its circuits never fit --budget 1
SCOPE=3
FAMILY=DT

tmp="$(mktemp -d)"
server_pid=""
cleanup() {
  if [[ -n "$server_pid" ]] && kill -0 "$server_pid" 2>/dev/null; then
    kill "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$tmp"
}
trap cleanup EXIT

cargo build --release -p mcml-bench -p mcml-serve

# 1. Warm runs: build and persist one circuit artifact per property, in
# separate directories, to exercise the multi-directory store merge.
batch_acc_for() {
  local property="$1" out="$2"
  awk -v prop="$property" -v fam="$FAMILY" \
    '$1 == prop && $2 == fam { print $7 }' "$out"
}
target/release/table3 --engine compiled --property "$PROPERTY_A" --scope "$SCOPE" \
  --artifact-dir "$tmp/artifacts-a" | tee "$tmp/table3-a.txt"
target/release/table3 --engine compiled --property "$PROPERTY_B" --scope "$SCOPE" \
  --artifact-dir "$tmp/artifacts-b" | tee "$tmp/table3-b.txt"
# A third artifact built under a budget too small to compile anything:
# its covers are persisted without circuits, so only the approx fallback
# can serve it.
target/release/table3 --engine compiled --property "$PROPERTY_C" --scope "$SCOPE" \
  --budget 1 --fallback approx --artifact-dir "$tmp/artifacts-c" \
  | tee "$tmp/table3-c.txt"
batch_acc_a="$(batch_acc_for "$PROPERTY_A" "$tmp/table3-a.txt")"
batch_acc_b="$(batch_acc_for "$PROPERTY_B" "$tmp/table3-b.txt")"
for acc in "$batch_acc_a" "$batch_acc_b"; do
  if [[ -z "$acc" || "$acc" == "-" ]]; then
    echo "smoke: missing Acc(phi) cell in the table output" >&2
    exit 1
  fi
done

# 2. Serve both artifact directories on an ephemeral port; wait for the
# address line.
target/release/mcml-serve serve \
  --artifact-dir "$tmp/artifacts-a" --artifact-dir "$tmp/artifacts-b" \
  --artifact-dir "$tmp/artifacts-c" --fallback approx \
  --addr 127.0.0.1:0 --workers 2 --connections 4 \
  >"$tmp/serve.out" 2>"$tmp/serve.log" &
server_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/^listening on //p' "$tmp/serve.out" | head -n 1)"
  [[ -n "$addr" ]] && break
  if ! kill -0 "$server_pid" 2>/dev/null; then
    cat "$tmp/serve.log" >&2
    echo "smoke: server exited before listening" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "$addr" ]]; then
  echo "smoke: server never reported its address" >&2
  exit 1
fi
echo "smoke: server listening on $addr"

# 3. One persistent connection, the whole session: both exact artifacts'
# accuracies, stats, a hot reload, the same accuracy again (the reload
# must not change what is served — the artifacts are unchanged on disk),
# the degraded unit's accuracy, and the shutdown.
target/release/mcml-serve client --addr "$addr" --stdin \
  >"$tmp/session.out" <<EOF
accuracy $PROPERTY_A $SCOPE $FAMILY
accuracy $PROPERTY_B $SCOPE $FAMILY
stats
reload
accuracy $PROPERTY_A $SCOPE $FAMILY
accuracy $PROPERTY_C $SCOPE $FAMILY
shutdown
EOF
mapfile -t replies <"$tmp/session.out"
sed 's/^/smoke: reply: /' "$tmp/session.out"
if [[ "${#replies[@]}" -ne 7 ]]; then
  echo "smoke: expected 7 replies, got ${#replies[@]}" >&2
  exit 1
fi

check_acc() {
  local reply="$1" batch="$2" label="$3"
  local served
  served="$(printf '%s\n' "$reply" | awk '$1 == "ok" { printf "%.4f", $6 }')"
  if [[ -z "$served" ]]; then
    echo "smoke: $label accuracy query failed: $reply" >&2
    exit 1
  fi
  if [[ "$served" != "$batch" ]]; then
    echo "smoke: $label served Acc(phi) $served != batch $batch" >&2
    exit 1
  fi
  echo "smoke: $label served Acc(phi) $served matches the batch table"
}
check_acc "${replies[0]}" "$batch_acc_a" "$PROPERTY_A"
check_acc "${replies[1]}" "$batch_acc_b" "$PROPERTY_B"
case "${replies[2]}" in
  "ok queries 2 degraded "*) ;;
  *) echo "smoke: unexpected stats reply: ${replies[2]}" >&2; exit 1 ;;
esac
if [[ "${replies[3]}" != "ok reloaded generation 1 units 3" ]]; then
  echo "smoke: unexpected reload reply: ${replies[3]}" >&2
  exit 1
fi
check_acc "${replies[4]}" "$batch_acc_a" "post-reload $PROPERTY_A"
if [[ "${replies[4]}" != "${replies[0]}" ]]; then
  echo "smoke: reload changed the served reply for unchanged artifacts" >&2
  exit 1
fi
# The circuit-less unit answers, degraded and labeled.
case "${replies[5]}" in
  ok*" approx "*) echo "smoke: degraded $PROPERTY_C reply carries the approx label" ;;
  *) echo "smoke: expected a labeled degraded reply, got: ${replies[5]}" >&2; exit 1 ;;
esac
if [[ "${replies[6]}" != "ok bye" ]]; then
  echo "smoke: unexpected shutdown reply: ${replies[6]}" >&2
  exit 1
fi

wait "$server_pid"
server_pid=""
echo "smoke: OK"
