#!/usr/bin/env bash
# End-to-end smoke test for the serving path:
#
#   1. a compiled table3 run persists its circuits and region covers to an
#      artifact directory (and prints the batch whole-space metrics);
#   2. mcml-serve preloads that artifact and answers over TCP;
#   3. a client accuracy query must reproduce the batch table's Acc(phi)
#      cell exactly (both sides round the same f64 to four decimals).
#
# Usage: scripts/serve_smoke.sh   (from anywhere; builds in release mode)
set -euo pipefail

cd "$(dirname "$0")/.."

PROPERTY=Function   # Property::name() spelling — used in the query and the table row
SCOPE=3
FAMILY=DT

tmp="$(mktemp -d)"
server_pid=""
cleanup() {
  if [[ -n "$server_pid" ]] && kill -0 "$server_pid" 2>/dev/null; then
    kill "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$tmp"
}
trap cleanup EXIT

cargo build --release -p mcml-bench -p mcml-serve

# 1. Warm run: build and persist the circuit artifact for one scope.
table_out="$tmp/table3.txt"
target/release/table3 --engine compiled --property "$PROPERTY" --scope "$SCOPE" \
  --artifact-dir "$tmp/artifacts" | tee "$table_out"
batch_acc="$(awk -v prop="$PROPERTY" -v fam="$FAMILY" \
  '$1 == prop && $2 == fam { print $7 }' "$table_out")"
if [[ -z "$batch_acc" || "$batch_acc" == "-" ]]; then
  echo "smoke: no Acc(phi) cell for $PROPERTY/$FAMILY in the table output" >&2
  exit 1
fi

# 2. Serve the artifact on an ephemeral port; wait for the address line.
target/release/mcml-serve serve --artifact-dir "$tmp/artifacts" \
  --addr 127.0.0.1:0 --workers 2 >"$tmp/serve.out" 2>"$tmp/serve.log" &
server_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/^listening on //p' "$tmp/serve.out" | head -n 1)"
  [[ -n "$addr" ]] && break
  if ! kill -0 "$server_pid" 2>/dev/null; then
    cat "$tmp/serve.log" >&2
    echo "smoke: server exited before listening" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "$addr" ]]; then
  echo "smoke: server never reported its address" >&2
  exit 1
fi
echo "smoke: server listening on $addr"

# 3. The served accuracy must match the batch cell after identical rounding.
reply="$(target/release/mcml-serve client --addr "$addr" \
  accuracy "$PROPERTY" "$SCOPE" "$FAMILY")"
echo "smoke: served reply: $reply"
served_acc="$(printf '%s\n' "$reply" | awk '$1 == "ok" { printf "%.4f", $6 }')"
if [[ -z "$served_acc" ]]; then
  echo "smoke: accuracy query failed: $reply" >&2
  exit 1
fi
if [[ "$served_acc" != "$batch_acc" ]]; then
  echo "smoke: served Acc(phi) $served_acc != batch $batch_acc" >&2
  exit 1
fi
echo "smoke: served Acc(phi) $served_acc matches the batch table"

target/release/mcml-serve client --addr "$addr" shutdown >/dev/null
wait "$server_pid"
server_pid=""
echo "smoke: OK"
