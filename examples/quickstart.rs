//! Quickstart: the paper's running example (Figures 1 and 2) end to end.
//!
//! Specifies the `Equivalence` property (reflexive + symmetric + transitive),
//! enumerates its solutions at scope 4 — with full symmetry breaking this
//! yields exactly the 5 non-isomorphic equivalence relations of Figure 2 —
//! then trains a decision tree on a balanced dataset and evaluates it both
//! traditionally and against the entire bounded input space with AccMC.
//!
//! Run with: `cargo run --release --example quickstart`

use datagen::builder::{DatasetBuilder, DatasetConfig, SplitRatio};
use datagen::positive::enumerate_positive;
use mcml::accmc::AccMc;
use mcml::backend::CounterBackend;
use mcml::framework::evaluate_classifier;
use mlkit::tree::{DecisionTree, TreeConfig};
use relspec::properties::Property;
use relspec::symmetry::SymmetryBreaking;
use relspec::translate::{translate_to_cnf, TranslateOptions};

fn main() {
    let property = Property::Equivalence;
    println!("== MCML quickstart: {property} ==\n");
    println!("Alloy-style specification:\n  {}\n", property.spec());

    // Figure 2: the 5 non-isomorphic equivalence relations at scope 4.
    let figure2 = enumerate_positive(property, 4, SymmetryBreaking::Full, usize::MAX);
    println!(
        "Non-isomorphic equivalence relations at scope 4 (Figure 2): {}",
        figure2.instances.len()
    );
    for (i, inst) in figure2.instances.iter().enumerate() {
        println!("solution {}:\n{inst}", i + 1);
    }

    // Build a balanced dataset at scope 4 with the default (partial) symmetry
    // breaking, split it 25:75 and train a decision tree.
    let scope = 4;
    let dataset = DatasetBuilder::new().build(DatasetConfig::new(property, scope));
    let (train, test) = dataset.split(SplitRatio::new(25));
    println!(
        "dataset: {} samples ({} positive), training on {}",
        dataset.dataset.len(),
        dataset.num_positive,
        train.len()
    );
    let tree = DecisionTree::fit(&train, TreeConfig::default());
    println!("trained {tree}");

    // Traditional evaluation on the held-out test set.
    let test_metrics = evaluate_classifier(&tree, &test);
    println!("test-set metrics:      {test_metrics}");

    // MCML evaluation against the entire 2^(n^2) input space.
    let ground_truth = translate_to_cnf(
        &property.spec(),
        TranslateOptions::new(scope).with_symmetry(SymmetryBreaking::Transpositions),
    );
    let backend = CounterBackend::exact();
    let whole_space = AccMc::new(&backend)
        .evaluate(&ground_truth, &tree)
        .expect("tree and ground truth share the scope")
        .expect("exact backend has no budget");
    println!("whole-space metrics:   {}", whole_space.metrics);
    println!(
        "whole-space counts:    tp={} fp={} tn={} fn={} (total {})",
        whole_space.counts.tp,
        whole_space.counts.fp,
        whole_space.counts.tn,
        whole_space.counts.fn_,
        whole_space.counts.total()
    );
    println!(
        "\nThe gap between the two precision numbers is the paper's headline finding:\n\
         the tree looks excellent on the balanced test set but mislabels a large share\n\
         of the (overwhelmingly negative) full input space as positive."
    );
}
