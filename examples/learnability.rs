//! RQ1: how effective are off-the-shelf ML models at learning relational
//! properties? (the paper's Table 2 setting).
//!
//! Trains all six model families (DT, RFT, GBDT, ABT, SVM, MLP) on the
//! PartialOrder property at several train:test ratios, including the extreme
//! 1:99 split, and prints their test-set metrics.
//!
//! Run with: `cargo run --release --example learnability`

use datagen::builder::{DatasetBuilder, DatasetConfig, SplitRatio};
use mcml::framework::evaluate_all_models;
use mcml::report::{format_metric, TextTable};
use relspec::properties::Property;

fn main() {
    let property = Property::PartialOrder;
    let scope = 4;
    let dataset =
        DatasetBuilder::new().build(DatasetConfig::new(property, scope).with_max_positive(2_000));
    println!(
        "== RQ1: learnability of {property} at scope {scope} ({} balanced samples) ==\n",
        dataset.dataset.len()
    );

    let mut table = TextTable::new(vec![
        "Ratio",
        "Model",
        "Accuracy",
        "Precision",
        "Recall",
        "F1-score",
    ]);
    for ratio in SplitRatio::paper_ratios() {
        let (train, test) = dataset.split(ratio);
        if train.is_empty() || test.is_empty() {
            continue;
        }
        for report in evaluate_all_models(&train, &test, 0) {
            table.push_row(vec![
                ratio.to_string(),
                report.model.to_string(),
                format_metric(Some(report.metrics.accuracy)),
                format_metric(Some(report.metrics.precision)),
                format_metric(Some(report.metrics.recall)),
                format_metric(Some(report.metrics.f1)),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "Even with only 1% of the data used for training, every model family keeps\n\
         high accuracy and F1 on the balanced test set — the \"seeming simplicity\"\n\
         of learning relational properties that RQ2 then revisits."
    );
}
