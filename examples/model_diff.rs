//! RQ5: quantifying the semantic difference between two trained decision
//! trees over the whole input space, without ground truth or datasets
//! (the paper's Table 8 setting).
//!
//! Trains two trees per property with different hyper-parameters and prints
//! their TT/TF/FT/FF counts, the Diff percentage, and — as a sanity anchor —
//! the diff of a tree against itself (always 0).
//!
//! Run with: `cargo run --release --example model_diff`

use mcml::backend::CounterBackend;
use mcml::diffmc::DiffMc;
use mcml::framework::{Experiment, ExperimentConfig};
use mcml::report::{format_count, TextTable};
use mlkit::tree::TreeConfig;
use relspec::properties::Property;

fn main() {
    let scope = 4;
    let properties = [
        Property::Irreflexive,
        Property::Antisymmetric,
        Property::PartialOrder,
        Property::PreOrder,
        Property::Transitive,
    ];
    println!("== RQ5: semantic differences between two decision trees at scope {scope} ==\n");

    let backend = CounterBackend::exact();
    let mut table = TextTable::new(vec![
        "Subject",
        "TT",
        "TF",
        "FT",
        "FF",
        "Diff %",
        "SelfDiff %",
    ]);

    for property in properties {
        let experiment = Experiment::new(ExperimentConfig::table3(property, scope));
        let (tree_a, _) = experiment.train_tree(TreeConfig::default());
        let (tree_b, _) = experiment.train_tree(TreeConfig {
            max_depth: Some(6),
            min_samples_split: 4,
            ..TreeConfig::default()
        });
        let r = DiffMc::new(&backend)
            .compare(&tree_a, &tree_b)
            .expect("trees share the feature space")
            .expect("exact backend has no budget");
        let self_diff = DiffMc::new(&backend)
            .compare(&tree_a, &tree_a)
            .expect("trees share the feature space")
            .expect("exact backend has no budget");
        table.push_row(vec![
            property.name().to_string(),
            format_count(r.counts.tt),
            format_count(r.counts.tf),
            format_count(r.counts.ft),
            format_count(r.counts.ff),
            format!("{:.2}", r.counts.diff() * 100.0),
            format!("{:.2}", self_diff.counts.diff() * 100.0),
        ]);
    }
    println!("{}", table.render());
    println!(
        "The two differently-configured trees agree on all but a small fraction of\n\
         the space (Diff close to 0), mirroring the paper's Table 8; a tree compared\n\
         against itself always has Diff = 0."
    );
}
