//! Varying the class ratio of the training data (the paper's Table 9).
//!
//! Trains decision trees for the Antisymmetric property on datasets whose
//! valid:invalid ratio ranges from 99:1 to 1:99, and contrasts the precision
//! reported by a same-distribution test set ("traditional") with the
//! precision over the entire state space computed by MCML — whose true
//! class ratio is heavily skewed toward invalid instances.
//!
//! Run with: `cargo run --release --example class_ratio`

use datagen::builder::{DatasetBuilder, DatasetConfig, SplitRatio};
use mcml::accmc::AccMc;
use mcml::backend::CounterBackend;
use mcml::framework::evaluate_classifier;
use mcml::report::{format_metric, TextTable};
use mlkit::tree::{DecisionTree, TreeConfig};
use relspec::properties::Property;
use relspec::translate::{translate_to_cnf, TranslateOptions};

fn main() {
    let property = Property::Antisymmetric;
    let scope = 4;
    println!("== Table 9 setting: class-ratio sweep for {property} at scope {scope} ==\n");

    let pool = DatasetBuilder::new().build(
        DatasetConfig::new(property, scope)
            .without_symmetry()
            .with_max_positive(3_000),
    );
    let ground_truth = translate_to_cnf(&property.spec(), TranslateOptions::new(scope));
    let backend = CounterBackend::exact();

    let mut table = TextTable::new(vec![
        "Valid:Invalid",
        "Traditional Precision",
        "MCML Precision",
    ]);
    for positive_percent in [99u32, 90, 75, 50, 25, 10, 1] {
        let skewed = pool.dataset.with_class_ratio(positive_percent, 17);
        let (train, test) = skewed.split(SplitRatio::new(75), 23);
        let tree = DecisionTree::fit(&train, TreeConfig::default());
        let traditional = evaluate_classifier(&tree, &test);
        let mcml = AccMc::new(&backend)
            .evaluate(&ground_truth, &tree)
            .expect("tree and ground truth share the scope")
            .expect("exact backend has no budget");
        table.push_row(vec![
            format!("{positive_percent}:{}", 100 - positive_percent),
            format_metric(Some(traditional.precision)),
            format_metric(Some(mcml.metrics.precision)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Traditional precision stays high for every training ratio, while the MCML\n\
         precision is low when the training distribution over-represents the positive\n\
         class and only approaches the traditional number near the true (1:99-like)\n\
         distribution — the paper's argument that MCML exposes what test sets hide."
    );
}
