//! RQ2: how well do decision trees generalize outside the test set?
//! (the paper's Table 3 / Table 5 setting).
//!
//! For a handful of properties, trains a decision tree on 10% of the
//! balanced dataset and compares its test-set metrics against its metrics
//! over the entire bounded input space computed with AccMC, using both the
//! exact and the approximate counting backend.
//!
//! Run with: `cargo run --release --example generalization`

use mcml::backend::CounterBackend;
use mcml::framework::{Experiment, ExperimentConfig};
use mcml::report::{format_metric, TextTable};
use relspec::properties::Property;

fn main() {
    let scope = 4;
    let properties = [
        Property::Reflexive,
        Property::Irreflexive,
        Property::Antisymmetric,
        Property::Connex,
        Property::PartialOrder,
        Property::Transitive,
        Property::Function,
    ];
    println!("== RQ2: generalization of decision trees at scope {scope} ==\n");

    let exact = CounterBackend::exact();
    let approx = CounterBackend::approx();
    let mut table = TextTable::new(vec![
        "Property",
        "Acc(test)",
        "Prec(test)",
        "Acc(phi)",
        "Prec(phi)",
        "Rec(phi)",
        "F1(phi)",
        "Prec(phi,approx)",
    ]);

    for property in properties {
        let config = ExperimentConfig::table5(property, scope);
        let result = Experiment::new(config).run(&exact);
        let approx_result = Experiment::new(config).run(&approx);
        let ws = result.whole_space.expect("exact backend has no budget");
        let ws_approx = approx_result.whole_space.expect("approx always answers");
        table.push_row(vec![
            property.name().to_string(),
            format_metric(Some(result.test_metrics.accuracy)),
            format_metric(Some(result.test_metrics.precision)),
            format_metric(Some(ws.metrics.accuracy)),
            format_metric(Some(ws.metrics.precision)),
            format_metric(Some(ws.metrics.recall)),
            format_metric(Some(ws.metrics.f1)),
            format_metric(Some(ws_approx.metrics.precision)),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Reflexive and Irreflexive stay perfect (the tree only needs the diagonal);\n\
         for the sparse properties the whole-space precision collapses even though\n\
         the test-set numbers look excellent."
    );
}
